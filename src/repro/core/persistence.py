"""Save/load trained tuner models.

The offline stage is trained once and reused for every tuning request
(Figure 1), so models must outlive the training process.  Network
parameters are stored in a single ``.npz`` archive together with the
metadata needed to rebuild the agent (dimensions, hyper-parameters,
DeepCAT thresholds).  Replay buffers are deliberately *not* persisted:
a fresh request starts fine-tuning from the offline weights, and the
paper's online stage only pushes new transitions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.baselines.cdbtune import CDBTune
from repro.core.deepcat import DeepCAT

__all__ = ["save_tuner", "load_tuner"]

_FORMAT_VERSION = 1

_TD3_NETS = (
    "actor", "actor_target",
    "critic1", "critic2", "critic1_target", "critic2_target",
)
_DDPG_NETS = ("actor", "actor_target", "critic", "critic_target")


def _collect_arrays(agent, nets: tuple[str, ...]) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            arrays[f"{net_name}/{i}"] = p.data
    return arrays


def _restore_arrays(agent, nets: tuple[str, ...], arrays) -> None:
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            key = f"{net_name}/{i}"
            if key not in arrays:
                raise ValueError(f"archive missing tensor {key}")
            data = arrays[key]
            if data.shape != p.data.shape:
                raise ValueError(
                    f"{key}: shape {data.shape} != expected {p.data.shape}"
                )
            p.data[...] = data


def _meta_for(tuner) -> dict:
    if isinstance(tuner, DeepCAT):
        return {
            "kind": "deepcat",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
            "use_rdper": tuner.use_rdper,
            "use_twin_q": tuner.use_twin_q,
            "reward_threshold": tuner.reward_threshold,
            "beta": tuner.beta,
            "q_threshold": tuner.q_threshold,
            "twinq_noise_sigma": tuner.twinq_noise_sigma,
        }
    if isinstance(tuner, CDBTune):
        return {
            "kind": "cdbtune",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
        }
    raise TypeError(f"cannot persist {type(tuner).__name__}")


def save_tuner(tuner, path: str | Path) -> Path:
    """Serialize a trained DeepCAT or CDBTune model to ``path`` (.npz)."""
    path = Path(path)
    meta = _meta_for(tuner)  # validates the tuner type first
    if isinstance(tuner, DeepCAT):
        arrays = _collect_arrays(tuner.agent, _TD3_NETS)
    else:
        arrays = _collect_arrays(tuner.agent, _DDPG_NETS)
    meta["format_version"] = _FORMAT_VERSION
    np.savez_compressed(
        path, __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ), **arrays,
    )
    # numpy appends .npz when missing
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_tuner(path: str | Path, seed: int = 0):
    """Rebuild a tuner from :func:`save_tuner` output.

    ``seed`` re-seeds the *runtime* randomness (exploration noise, replay
    sampling); the learned weights are restored exactly.
    """
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        hp_dict = dict(meta["hp"])
        hp_dict["hidden"] = tuple(hp_dict["hidden"])
        hp = AgentHyperParams(**hp_dict)
        if meta["kind"] == "deepcat":
            tuner = DeepCAT(
                meta["state_dim"],
                meta["action_dim"],
                seed=seed,
                hp=hp,
                reward_threshold=meta["reward_threshold"],
                beta=meta["beta"],
                q_threshold=meta["q_threshold"],
                twinq_noise_sigma=meta["twinq_noise_sigma"],
                use_rdper=meta["use_rdper"],
                use_twin_q=meta["use_twin_q"],
            )
            _restore_arrays(tuner.agent, _TD3_NETS, archive)
        elif meta["kind"] == "cdbtune":
            tuner = CDBTune(
                meta["state_dim"], meta["action_dim"], seed=seed, hp=hp
            )
            _restore_arrays(tuner.agent, _DDPG_NETS, archive)
        else:
            raise ValueError(f"unknown tuner kind {meta['kind']!r}")
    return tuner
