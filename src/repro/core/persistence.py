"""Save/load trained tuner models and crash-recoverable tuning sessions.

The offline stage is trained once and reused for every tuning request
(Figure 1), so models must outlive the training process.  Network
parameters are stored in a single ``.npz`` archive together with the
metadata needed to rebuild the agent (dimensions, hyper-parameters,
DeepCAT thresholds).  Replay buffers are deliberately *not* persisted
in *model* archives: a fresh request starts fine-tuning from the
offline weights, and the paper's online stage only pushes new
transitions.

Session *checkpoints* are the opposite: they freeze an in-flight online
tuning session completely — agent weights, RDPER P_high/P_low pools,
every RNG state, the environment (cluster tracker + simulator + fault
injector), the resilience policy's streak state, and the step counter —
so a killed session resumed with ``repro tune --resume`` replays
bit-identically to one that was never interrupted.  Snapshots are
written atomically (tmp file + ``os.replace``), so a kill mid-write
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.baselines.cdbtune import CDBTune
from repro.core.deepcat import DeepCAT

__all__ = [
    "save_tuner",
    "load_tuner",
    "SessionCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
    "PopulationCheckpoint",
    "save_population_checkpoint",
    "load_population_checkpoint",
    "PopulationCheckpointManager",
]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1
_POPULATION_CHECKPOINT_VERSION = 1

_TD3_NETS = (
    "actor", "actor_target",
    "critic1", "critic2", "critic1_target", "critic2_target",
)
_DDPG_NETS = ("actor", "actor_target", "critic", "critic_target")


def _collect_arrays(agent, nets: tuple[str, ...]) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            arrays[f"{net_name}/{i}"] = p.data
    return arrays


def _restore_arrays(agent, nets: tuple[str, ...], arrays) -> None:
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            key = f"{net_name}/{i}"
            if key not in arrays:
                raise ValueError(f"archive missing tensor {key}")
            data = arrays[key]
            if data.shape != p.data.shape:
                raise ValueError(
                    f"{key}: shape {data.shape} != expected {p.data.shape}"
                )
            p.data[...] = data


def _meta_for(tuner) -> dict:
    if isinstance(tuner, DeepCAT):
        return {
            "kind": "deepcat",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
            "use_rdper": tuner.use_rdper,
            "use_twin_q": tuner.use_twin_q,
            "reward_threshold": tuner.reward_threshold,
            "beta": tuner.beta,
            "q_threshold": tuner.q_threshold,
            "twinq_noise_sigma": tuner.twinq_noise_sigma,
        }
    if isinstance(tuner, CDBTune):
        return {
            "kind": "cdbtune",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
        }
    raise TypeError(f"cannot persist {type(tuner).__name__}")


def save_tuner(tuner, path: str | Path) -> Path:
    """Serialize a trained DeepCAT or CDBTune model to ``path`` (.npz)."""
    path = Path(path)
    meta = _meta_for(tuner)  # validates the tuner type first
    if isinstance(tuner, DeepCAT):
        arrays = _collect_arrays(tuner.agent, _TD3_NETS)
    else:
        arrays = _collect_arrays(tuner.agent, _DDPG_NETS)
    meta["format_version"] = _FORMAT_VERSION
    np.savez_compressed(
        path, __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ), **arrays,
    )
    # numpy appends .npz when missing
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_tuner(path: str | Path, seed: int = 0):
    """Rebuild a tuner from :func:`save_tuner` output.

    ``seed`` re-seeds the *runtime* randomness (exploration noise, replay
    sampling); the learned weights are restored exactly.
    """
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        hp_dict = dict(meta["hp"])
        hp_dict["hidden"] = tuple(hp_dict["hidden"])
        hp = AgentHyperParams(**hp_dict)
        if meta["kind"] == "deepcat":
            tuner = DeepCAT(
                meta["state_dim"],
                meta["action_dim"],
                seed=seed,
                hp=hp,
                reward_threshold=meta["reward_threshold"],
                beta=meta["beta"],
                q_threshold=meta["q_threshold"],
                twinq_noise_sigma=meta["twinq_noise_sigma"],
                use_rdper=meta["use_rdper"],
                use_twin_q=meta["use_twin_q"],
            )
            _restore_arrays(tuner.agent, _TD3_NETS, archive)
        elif meta["kind"] == "cdbtune":
            tuner = CDBTune(
                meta["state_dim"], meta["action_dim"], seed=seed, hp=hp
            )
            _restore_arrays(tuner.agent, _DDPG_NETS, archive)
        else:
            raise ValueError(f"unknown tuner kind {meta['kind']!r}")
    return tuner


# ===================================================================== #
#  Session checkpointing                                                #
# ===================================================================== #


@dataclass
class SessionCheckpoint:
    """A frozen in-flight online tuning session.

    ``next_step`` is the index of the first step *not yet executed*
    (always ``len(session.steps)``); resuming means calling
    ``tuner.tune_online(env, steps=total, session=session,
    start_step=next_step, resilience=resilience)``.
    """

    tuner: Any
    env: Any
    session: Any
    next_step: int
    resilience: Any = None


def _telemetry_attachment_points(tuner, env):
    """Every ``(obj, attr)`` through which live telemetry (lock-bearing
    tracers/registries) can leak into the pickled object graph."""
    points = []
    agent = getattr(tuner, "agent", None)
    if agent is not None and hasattr(agent, "telemetry"):
        points.append((agent, "telemetry"))
    buffer = getattr(tuner, "buffer", None)
    if buffer is not None and hasattr(buffer, "_telemetry"):
        points.append((buffer, "_telemetry"))
    simulator = getattr(getattr(env, "runner", None), "simulator", None)
    if simulator is not None and hasattr(simulator, "telemetry"):
        points.append((simulator, "telemetry"))
    return points


@contextlib.contextmanager
def _telemetry_detached(tuner, env):
    """Temporarily swap live telemetry for the null context.

    Live tracers/registries hold ``threading.Lock`` (and
    ``threading.local``) and cannot be pickled; telemetry is shared
    infrastructure, not run state, so it is excluded from checkpoints
    and reattached by the caller after a restore.
    """
    from repro.telemetry.context import NULL_CONTEXT

    points = _telemetry_attachment_points(tuner, env)
    saved = [(obj, attr, getattr(obj, attr)) for obj, attr in points]
    for obj, attr in points:
        setattr(obj, attr, NULL_CONTEXT)
    try:
        yield
    finally:
        for obj, attr, value in saved:
            setattr(obj, attr, value)


def save_checkpoint(
    path: str | Path,
    *,
    tuner,
    env,
    session,
    next_step: int,
    resilience=None,
) -> Path:
    """Atomically snapshot an in-flight tuning session to ``path``.

    The tmp-file + ``os.replace`` dance guarantees the file at ``path``
    is always a complete checkpoint — a kill during the write leaves the
    previous snapshot intact.
    """
    path = Path(path)
    payload = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "tuner": tuner,
        "env": env,
        "session": session,
        "next_step": int(next_step),
        "resilience": resilience,
    }
    tmp = path.with_name(path.name + ".tmp")
    with _telemetry_detached(tuner, env):
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> SessionCheckpoint:
    """Restore a session snapshot written by :func:`save_checkpoint`.

    Telemetry comes back as the null context; reattach a live
    :class:`~repro.telemetry.context.RunContext` by passing it to
    ``tune_online`` as usual.
    """
    with open(Path(path), "rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("checkpoint_version")
    if version != _CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    return SessionCheckpoint(
        tuner=payload["tuner"],
        env=payload["env"],
        session=payload["session"],
        next_step=payload["next_step"],
        resilience=payload["resilience"],
    )


@dataclass
class PopulationCheckpoint:
    """A frozen in-flight *population* of online tuning sessions.

    Parallel per-member lists; ``next_steps[i]`` is the first step member
    ``i`` has not yet executed (``len(sessions[i].steps)``).  Resuming
    means rebuilding the population via
    ``PopulationTuner.from_deepcat(tuners, envs, sessions=sessions,
    start_steps=next_steps, resiliences=resiliences)`` and calling
    ``tune`` with the original total step count.
    """

    tuners: list
    envs: list
    sessions: list
    next_steps: list[int]
    resiliences: list


def save_population_checkpoint(
    path: str | Path,
    *,
    tuners,
    envs,
    sessions,
    next_steps,
    resiliences=None,
) -> Path:
    """Atomically snapshot an in-flight population to one file.

    Same guarantees as :func:`save_checkpoint` (tmp + ``os.replace``,
    telemetry detached from every member's object graph); each member's
    tuner/env/session is pickled exactly as its scalar checkpoint would
    be, so a restored member resumes bit-identically whether it rejoins
    a population or continues alone.
    """
    path = Path(path)
    tuners = list(tuners)
    envs = list(envs)
    sessions = list(sessions)
    next_steps = [int(s) for s in next_steps]
    resiliences = (
        list(resiliences) if resiliences is not None else [None] * len(tuners)
    )
    if not (
        len(tuners) == len(envs) == len(sessions)
        == len(next_steps) == len(resiliences)
    ):
        raise ValueError("per-member checkpoint lists must match in length")
    payload = {
        "population_checkpoint_version": _POPULATION_CHECKPOINT_VERSION,
        "members": [
            {
                "tuner": tuner,
                "env": env,
                "session": session,
                "next_step": next_step,
                "resilience": resilience,
            }
            for tuner, env, session, next_step, resilience in zip(
                tuners, envs, sessions, next_steps, resiliences
            )
        ],
    }
    tmp = path.with_name(path.name + ".tmp")
    with contextlib.ExitStack() as stack:
        for tuner, env in zip(tuners, envs):
            stack.enter_context(_telemetry_detached(tuner, env))
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_population_checkpoint(path: str | Path) -> PopulationCheckpoint:
    """Restore a population snapshot written by
    :func:`save_population_checkpoint`."""
    with open(Path(path), "rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("population_checkpoint_version")
    if version != _POPULATION_CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported population checkpoint version {version}"
        )
    members = payload["members"]
    return PopulationCheckpoint(
        tuners=[m["tuner"] for m in members],
        envs=[m["env"] for m in members],
        sessions=[m["session"] for m in members],
        next_steps=[m["next_step"] for m in members],
        resiliences=[m["resilience"] for m in members],
    )


class PopulationCheckpointManager:
    """Periodic population checkpointer handed to ``PopulationTuner.tune``.

    ``every`` is the snapshot cadence in *lockstep* iterations.
    ``on_step`` receives the per-member sessions and the lockstep index
    just completed; ``save`` writes unconditionally (final snapshot on
    interrupt).
    """

    def __init__(self, path: str | Path, tuners, envs, resiliences=None,
                 every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.tuners = list(tuners)
        self.envs = list(envs)
        self.resiliences = (
            list(resiliences)
            if resiliences is not None
            else [None] * len(self.tuners)
        )
        self.every = every
        self.saves = 0
        #: progress of the newest on-disk snapshot (None = nothing saved)
        self.saved_next_steps: list[int] | None = None

    def save(self, sessions, next_steps) -> Path:
        self.saves += 1
        path = save_population_checkpoint(
            self.path,
            tuners=self.tuners,
            envs=self.envs,
            sessions=sessions,
            next_steps=next_steps,
            resiliences=self.resiliences,
        )
        self.saved_next_steps = list(next_steps)
        return path

    def save_if_stale(self, sessions, next_steps) -> Path | None:
        """Final snapshot on interrupt — but only when it would add
        progress.  An interrupt lands mid-lockstep, *after* the members'
        RNG streams advanced for the in-flight step; overwriting a clean
        boundary snapshot of the same progress with those dirty streams
        would break resume bit-identity.
        """
        if self.saved_next_steps == list(next_steps):
            return None
        return self.save(sessions, next_steps)

    def on_step(self, sessions, next_step: int) -> Path | None:
        if next_step % self.every == 0:
            return self.save(
                sessions, [len(s.steps) for s in sessions]
            )
        return None


class CheckpointManager:
    """Periodic checkpointer handed to ``OnlineTuner.tune``.

    ``every`` controls the snapshot cadence in steps (1 = after every
    step).  ``on_step`` is called by the tuning loop with the session
    and the next step index; ``save`` writes unconditionally (used for
    the final snapshot on interrupt).
    """

    def __init__(self, path: str | Path, tuner, env, resilience=None,
                 every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.tuner = tuner
        self.env = env
        self.resilience = resilience
        self.every = every
        self.saves = 0
        #: progress of the newest on-disk snapshot (None = nothing saved)
        self.saved_next_step: int | None = None

    def save(self, session, next_step: int) -> Path:
        self.saves += 1
        path = save_checkpoint(
            self.path,
            tuner=self.tuner,
            env=self.env,
            session=session,
            next_step=next_step,
            resilience=self.resilience,
        )
        self.saved_next_step = next_step
        return path

    def save_if_stale(self, session, next_step: int) -> Path | None:
        """Final snapshot on interrupt — skipped when the cadence already
        persisted this progress.  The interrupt lands mid-step, after the
        tuner's RNG advanced for the in-flight recommendation, so
        rewriting an existing clean-boundary snapshot would trade a
        resumable bit-identical state for a dirty one.
        """
        if self.saved_next_step == next_step:
            return None
        return self.save(session, next_step)

    def on_step(self, session, next_step: int) -> Path | None:
        if next_step % self.every == 0:
            return self.save(session, next_step)
        return None
