"""Session records shared by all tuners (DeepCAT, CDBTune, OtterTune)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["TuningStepRecord", "OnlineSession", "sessions_equal"]


@dataclass(frozen=True)
class TuningStepRecord:
    """One online tuning step: a recommendation plus its evaluation."""

    step: int
    duration_s: float  # evaluation cost (execution time of the config)
    recommendation_s: float  # wall-clock spent recommending the action
    reward: float
    success: bool
    config: dict[str, Any]
    action: np.ndarray
    #: Twin-Q diagnostics (DeepCAT only; None for baselines)
    twinq_iterations: int | None = None
    twinq_accepted: bool | None = None
    original_q: float | None = None
    final_q: float | None = None
    #: resilience diagnostics (1/False/False/() when the step was clean
    #: or no resilience policy was active)
    attempts: int = 1
    aborted: bool = False
    fallback: bool = False
    faults: tuple[str, ...] = ()


@dataclass
class OnlineSession:
    """The full record of one online tuning phase (5 steps in the paper)."""

    tuner: str
    workload: str
    dataset: str
    steps: list[TuningStepRecord] = field(default_factory=list)
    default_duration_s: float = 0.0

    def add(self, record: TuningStepRecord) -> None:
        self.steps.append(record)

    # -- aggregates the paper reports -----------------------------------

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def best_step(self) -> TuningStepRecord:
        successes = [s for s in self.steps if s.success]
        if not successes:
            raise ValueError("no successful step in session")
        return min(successes, key=lambda s: s.duration_s)

    @property
    def best_duration_s(self) -> float:
        """Execution time of the best configuration found (Figure 6)."""
        return self.best_step.duration_s

    @property
    def best_config(self) -> dict[str, Any]:
        return self.best_step.config

    @property
    def speedup_over_default(self) -> float:
        """Best-config speedup over the default configuration (Figure 6)."""
        if self.default_duration_s <= 0:
            raise ValueError("default duration not recorded")
        return self.default_duration_s / self.best_duration_s

    @property
    def evaluation_seconds(self) -> float:
        """Total configuration-evaluation time across steps (Figure 7)."""
        return float(sum(s.duration_s for s in self.steps))

    @property
    def recommendation_seconds(self) -> float:
        """Total recommendation wall-clock across steps (Figure 7, black)."""
        return float(sum(s.recommendation_s for s in self.steps))

    @property
    def total_tuning_seconds(self) -> float:
        """Evaluation + recommendation: the total online tuning cost."""
        return self.evaluation_seconds + self.recommendation_seconds

    def best_so_far(self) -> list[float]:
        """Best execution time after each step (Figure 8, upper series).

        Failed steps carry the previous best forward; leading failures
        carry the default duration.
        """
        best = float("inf")
        out = []
        for s in self.steps:
            if s.success:
                best = min(best, s.duration_s)
            out.append(best if best < float("inf") else self.default_duration_s)
        return out

    def accumulated_cost(self) -> list[float]:
        """Cumulative tuning cost after each step (Figure 8, lower series)."""
        acc, out = 0.0, []
        for s in self.steps:
            acc += s.duration_s + s.recommendation_s
            out.append(acc)
        return out


def sessions_equal(a: OnlineSession, b: OnlineSession) -> bool:
    """Field-exact equality of two sessions, ignoring ``recommendation_s``.

    Recommendation time is measured with ``time.perf_counter`` and is the
    only inherently nondeterministic field, so it is excluded; everything
    else — rewards, durations, configs, actions, resilience diagnostics —
    must match bit-for-bit.  Used by the checkpoint/resume determinism
    tests: a killed-and-resumed session must equal the uninterrupted one.
    """
    if (a.tuner, a.workload, a.dataset) != (b.tuner, b.workload, b.dataset):
        return False
    if a.default_duration_s != b.default_duration_s:
        return False
    if len(a.steps) != len(b.steps):
        return False
    for ra, rb in zip(a.steps, b.steps):
        fields_a = {**vars(ra)}
        fields_b = {**vars(rb)}
        fields_a.pop("recommendation_s")
        fields_b.pop("recommendation_s")
        act_a = fields_a.pop("action")
        act_b = fields_b.pop("action")
        if not np.array_equal(act_a, act_b):
            return False
        if fields_a != fields_b:
            return False
    return True
