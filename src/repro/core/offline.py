"""Offline training stage (left half of the paper's Figure 1).

The agent interacts with the standard environment by trial and error:
recommend a configuration, evaluate it, store the transition, update the
networks from replayed batches.  Works with any agent/buffer combination
(TD3+RDPER for DeepCAT, DDPG+PER for CDBTune, TD3+uniform for the
Figure 4 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.envs.tuning_env import TuningEnv
from repro.replay.base import Transition
from repro.replay.per import PrioritizedReplayBuffer

__all__ = ["OfflineTrainer", "OfflineTrainingLog"]


@dataclass
class OfflineTrainingLog:
    """Per-iteration traces of the offline stage.

    ``min_q`` holds the conservative critic estimate of each executed
    action *before* the corresponding update — exactly the quantity
    Figure 3 plots against the real reward.
    """

    rewards: list[float] = field(default_factory=list)
    min_q: list[float] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    critic_losses: list[float] = field(default_factory=list)
    best_duration_s: float = float("inf")
    best_action: np.ndarray | None = None

    @property
    def iterations(self) -> int:
        return len(self.rewards)


class OfflineTrainer:
    """Drives agent-environment interaction plus replay updates.

    ``telemetry`` (a :class:`~repro.telemetry.context.RunContext`)
    carries logger, tracer, metrics, and manifest in one object; the
    legacy ``logger`` keyword still works and is routed through a
    context internally.
    """

    def __init__(
        self,
        agent,
        buffer,
        updates_per_step: int = 1,
        logger=None,
        telemetry=None,
    ):
        if updates_per_step < 0:
            raise ValueError("updates_per_step cannot be negative")
        self.agent = agent
        self.buffer = buffer
        self.updates_per_step = updates_per_step
        self.log = OfflineTrainingLog()
        from repro.telemetry.context import ensure_context

        self.telemetry = ensure_context(telemetry, logger)

    @property
    def logger(self):
        """The event logger (backward-compatible accessor)."""
        return self.telemetry.logger

    def _q_estimate(self, state, action) -> float:
        """Critic's view of ``action`` before learning from it."""
        if hasattr(self.agent, "min_q"):
            return self.agent.min_q(state, action)
        return self.agent.q_value(state, action)

    def _absorb(self, it, outcome, q_est, callback, warmup=False) -> None:
        """Push one outcome into replay, run updates, log, emit telemetry.

        Shared by the sequential loop and the batched LHS warmup so both
        perform identical bookkeeping per evaluation.  ``warmup`` routes
        the ledger charge to the warmup account (random/LHS exploration
        before the agent starts acting).
        """
        t = self.telemetry
        if t.ledger.enabled:
            t.ledger.charge(
                "warmup" if warmup else "evaluation",
                float(outcome.duration_s),
                step=it,
                phase="offline",
                success=bool(outcome.success),
                config=outcome.config,
            )
        self.buffer.push(
            Transition(
                state=outcome.state,
                action=outcome.action,
                reward=outcome.reward,
                next_state=outcome.next_state,
            )
        )

        if self.buffer.can_sample(self.agent.hp.batch_size):
            with t.span("offline.update"):
                for _ in range(self.updates_per_step):
                    batch = self.buffer.sample(self.agent.hp.batch_size)
                    diag = self.agent.update(batch)
                    if isinstance(self.buffer, PrioritizedReplayBuffer):
                        self.buffer.update_priorities(
                            batch.indices, diag["td_errors"]
                        )
                    self.log.critic_losses.append(diag["critic_loss"])

        self.log.rewards.append(outcome.reward)
        self.log.min_q.append(q_est)
        self.log.durations.append(outcome.duration_s)
        if (
            outcome.success
            and outcome.duration_s < self.log.best_duration_s
        ):
            self.log.best_duration_s = outcome.duration_s
            self.log.best_action = outcome.action.copy()
        t.count(
            "offline.steps_total",
            help="offline environment steps (evaluations)",
        )
        if not outcome.success:
            t.count(
                "offline.failed_steps_total",
                help="offline evaluations that failed",
            )
        t.observe(
            "offline.q_estimate",
            float(q_est),
            help="conservative critic Q of executed actions",
        )
        t.observe(
            "offline.evaluation_seconds",
            float(outcome.duration_s),
            help="per-evaluation simulated cost",
        )
        t.gauge_set(
            "replay.size",
            len(self.buffer),
            help="replay pool occupancy",
        )
        # Learning-health detectors (pure observers; q_est is already
        # computed for the offline log, so this adds no model work).
        if t.diagnostics.enabled:
            t.diagnostics.observe_step(
                step=it,
                reward=float(outcome.reward),
                success=bool(outcome.success),
                q_pred=float(q_est),
            )
            # Drain before the step event so heartbeats written on
            # "offline-step" reflect this iteration's alerts.
            for alert in t.diagnostics.drain_alerts():
                t.event("alert", **alert.as_event_fields())
        t.event(
            "offline-step",
            iteration=it,
            reward=float(outcome.reward),
            duration_s=float(outcome.duration_s),
            success=bool(outcome.success),
            best_s=float(self.log.best_duration_s),
        )
        if callback is not None:
            callback(it, self.log)

    def train(
        self,
        env: TuningEnv,
        iterations: int,
        callback: Callable[[int, OfflineTrainingLog], None] | None = None,
        *,
        lhs_warmup: bool = False,
    ) -> OfflineTrainingLog:
        """Run ``iterations`` environment steps with interleaved updates.

        Each iteration is one costly configuration evaluation on the
        target cluster — the unit the paper's Figure 4 x-axis counts.

        ``lhs_warmup=True`` replaces the uniform per-step warmup actions
        with one Latin-hypercube draw evaluated through the simulator's
        batched fast path (space-filling coverage, one vectorized
        evaluation).  Replay pushes, agent updates, logging, and
        telemetry still happen per outcome in order.  Off by default:
        it changes which warmup configurations are explored, so runs are
        only reproducible against other ``lhs_warmup=True`` runs.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        t = self.telemetry
        if hasattr(env, "attach_telemetry"):
            env.attach_telemetry(t)
        if hasattr(self.buffer, "set_telemetry"):
            self.buffer.set_telemetry(t)
        if hasattr(self.agent, "telemetry"):
            self.agent.telemetry = t
        state = env.state
        warmup = self.agent.hp.warmup_steps
        start = 0
        with t.phase("offline.train"), t.span(
            "offline.train", iterations=iterations
        ):
            if lhs_warmup and len(self.buffer) < warmup:
                n = min(warmup - len(self.buffer), iterations)
                # Same stream random_action() would have consumed.
                vectors = env.space.latin_hypercube(self.agent._rng, n)
                with t.span("offline.warmup-batch", candidates=n):
                    outcomes = env.step_batch(vectors)
                for it, outcome in enumerate(outcomes):
                    with t.phase("offline.step"), t.span(
                        "offline.step", iteration=it
                    ):
                        q_est = self._q_estimate(
                            outcome.state, outcome.action
                        )
                        self._absorb(it, outcome, q_est, callback,
                                     warmup=True)
                state = env.state
                start = n
            for it in range(start, iterations):
                with t.phase("offline.step"), t.span(
                    "offline.step", iteration=it
                ):
                    in_warmup = len(self.buffer) < warmup
                    if in_warmup:
                        action = self.agent.random_action()
                    else:
                        action = self.agent.act(state, explore=True)

                    q_est = self._q_estimate(state, action)

                    with t.span("offline.evaluate"):
                        outcome = env.step(action)
                    state = outcome.next_state
                    self._absorb(it, outcome, q_est, callback,
                                 warmup=in_warmup)
        if t.manifest is not None:
            t.manifest.record_hyper_params(self.agent.hp)
            t.manifest.record_stage(
                "offline-train",
                iterations=iterations,
                best_duration_s=self.log.best_duration_s,
                replay_size=len(self.buffer),
            )
        return self.log
