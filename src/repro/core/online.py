"""Online tuning stage (right half of the paper's Figure 1).

When a tuning request arrives, the offline model is fine-tuned with a
small number of sequential online steps.  Each step: the actor recommends
an action for the current state; DeepCAT passes it through the Twin-Q
Optimizer (baselines skip this); the — possibly optimized — configuration
is evaluated on the target cluster; the transition feeds fine-tuning
updates.  The session ends at the step constraint or when the time budget
is exhausted, and the best configuration ever found is reported.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import OnlineSession, TuningStepRecord
from repro.core.twinq import twin_q_optimize
from repro.envs.tuning_env import TuningEnv
from repro.replay.base import Transition
from repro.replay.per import PrioritizedReplayBuffer

__all__ = ["OnlineTuner"]


class OnlineTuner:
    """Runs the online tuning phase for any actor-critic tuner."""

    def __init__(
        self,
        agent,
        buffer,
        name: str,
        use_twin_q: bool = False,
        q_threshold: float = 0.3,
        twinq_noise_sigma: float = 0.1,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        rng: np.random.Generator | None = None,
        logger=None,
        telemetry=None,
    ):
        if fine_tune_updates < 0:
            raise ValueError("fine_tune_updates cannot be negative")
        from repro.telemetry.context import ensure_context

        self.telemetry = ensure_context(telemetry, logger)
        self.agent = agent
        self.buffer = buffer
        self.name = name
        self.use_twin_q = use_twin_q
        self.q_threshold = q_threshold
        self.twinq_noise_sigma = twinq_noise_sigma
        self.fine_tune_updates = fine_tune_updates
        self.exploration_sigma = exploration_sigma
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def logger(self):
        """The event logger (backward-compatible accessor)."""
        return self.telemetry.logger

    def _recommend(self, state: np.ndarray) -> tuple[np.ndarray, dict]:
        """Produce the action for this step; returns (action, twinq diag)."""
        action = self.agent.act(state, explore=False)
        if self.exploration_sigma > 0:
            action = np.clip(
                action
                + self._rng.normal(0.0, self.exploration_sigma, action.shape),
                0.0,
                1.0,
            )
        diag: dict = {}
        if self.use_twin_q:
            outcome = twin_q_optimize(
                self.agent,
                state,
                action,
                q_threshold=self.q_threshold,
                noise_sigma=self.twinq_noise_sigma,
                rng=self._rng,
                telemetry=self.telemetry,
            )
            action = outcome.action
            diag = {
                "twinq_iterations": outcome.iterations,
                "twinq_accepted": outcome.accepted,
                "original_q": outcome.original_q,
                "final_q": outcome.q_value,
            }
        return action, diag

    def tune(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
    ) -> OnlineSession:
        """Run up to ``steps`` online tuning steps (5 in the paper).

        ``time_budget_s`` optionally bounds the *total tuning cost*
        (evaluation + recommendation time); the session stops once it is
        exceeded (§5.2.3's tuning-cost constraint).
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        t = self.telemetry
        if hasattr(env, "attach_telemetry"):
            env.attach_telemetry(t)
        if self.buffer is not None and hasattr(self.buffer, "set_telemetry"):
            self.buffer.set_telemetry(t)
        if hasattr(self.agent, "telemetry"):
            self.agent.telemetry = t
        session = OnlineSession(
            tuner=self.name,
            workload=env.runner.workload.code,
            dataset=env.runner.dataset.label,
            default_duration_s=env.default_duration,
        )
        state = env.state
        with t.span(
            "online.tune", tuner=self.name, workload=session.workload,
            dataset=session.dataset,
        ):
            for step in range(steps):
                with t.span("online.step", step=step):
                    t0 = time.perf_counter()
                    with t.span("online.recommend"):
                        action, diag = self._recommend(state)
                    recommendation_s = time.perf_counter() - t0

                    with t.span("online.evaluate"):
                        outcome = env.step(action)
                    state = outcome.next_state

                    if self.buffer is not None:
                        self.buffer.push(
                            Transition(
                                state=outcome.state,
                                action=outcome.action,
                                reward=outcome.reward,
                                next_state=outcome.next_state,
                            )
                        )
                        if self.buffer.can_sample(self.agent.hp.batch_size):
                            with t.span("online.finetune"):
                                for _ in range(self.fine_tune_updates):
                                    batch = self.buffer.sample(
                                        self.agent.hp.batch_size
                                    )
                                    d = self.agent.update(batch)
                                    if isinstance(
                                        self.buffer, PrioritizedReplayBuffer
                                    ):
                                        self.buffer.update_priorities(
                                            batch.indices, d["td_errors"]
                                        )

                    session.add(
                        TuningStepRecord(
                            step=step,
                            duration_s=outcome.duration_s,
                            recommendation_s=recommendation_s,
                            reward=outcome.reward,
                            success=outcome.success,
                            config=outcome.config,
                            action=outcome.action,
                            twinq_iterations=diag.get("twinq_iterations"),
                            twinq_accepted=diag.get("twinq_accepted"),
                            original_q=diag.get("original_q"),
                            final_q=diag.get("final_q"),
                        )
                    )
                    # The paper's cost split: recommendation time is the
                    # tuner's own overhead, evaluation time is what the
                    # Twin-Q Optimizer exists to reduce (Figure 7).
                    t.count(
                        "online.steps_total",
                        help="online tuning steps served",
                        tuner=self.name,
                    )
                    t.count(
                        "online.recommendation_seconds_total",
                        recommendation_s,
                        help="cumulative recommendation time",
                        tuner=self.name,
                    )
                    t.count(
                        "online.evaluation_seconds_total",
                        float(outcome.duration_s),
                        help="cumulative configuration evaluation time",
                        tuner=self.name,
                    )
                    t.observe(
                        "online.step_reward",
                        float(outcome.reward),
                        help="per-step reward",
                        tuner=self.name,
                    )
                    t.event(
                        "online-step",
                        tuner=self.name,
                        step=step,
                        duration_s=float(outcome.duration_s),
                        reward=float(outcome.reward),
                        success=bool(outcome.success),
                        recommendation_s=float(recommendation_s),
                    )
                    if (
                        time_budget_s is not None
                        and session.total_tuning_seconds >= time_budget_s
                    ):
                        break
        if t.manifest is not None:
            t.manifest.record_stage(
                "online-tune",
                tuner=self.name,
                workload=session.workload,
                dataset=session.dataset,
                steps=len(session.steps),
                best_duration_s=session.best_duration_s,
                total_tuning_seconds=session.total_tuning_seconds,
            )
        return session
