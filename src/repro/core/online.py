"""Online tuning stage (right half of the paper's Figure 1).

When a tuning request arrives, the offline model is fine-tuned with a
small number of sequential online steps.  Each step: the actor recommends
an action for the current state; DeepCAT passes it through the Twin-Q
Optimizer (baselines skip this); the — possibly optimized — configuration
is evaluated on the target cluster; the transition feeds fine-tuning
updates.  The session ends at the step constraint or when the time budget
is exhausted, and the best configuration ever found is reported.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.core.resilience import (
    ResiliencePolicy,
    burnt_attempt_seconds,
    sanitize_state,
)
from repro.core.result import OnlineSession, TuningStepRecord
from repro.core.twinq import screening_saving, twin_q_optimize
from repro.envs.tuning_env import TuningEnv
from repro.replay.base import Transition
from repro.replay.per import PrioritizedReplayBuffer

__all__ = ["OnlineTuner"]


class OnlineTuner:
    """Runs the online tuning phase for any actor-critic tuner."""

    def __init__(
        self,
        agent,
        buffer,
        name: str,
        use_twin_q: bool = False,
        q_threshold: float = 0.3,
        twinq_noise_sigma: float = 0.1,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        rng: np.random.Generator | None = None,
        logger=None,
        telemetry=None,
    ):
        if fine_tune_updates < 0:
            raise ValueError("fine_tune_updates cannot be negative")
        from repro.telemetry.context import ensure_context

        self.telemetry = ensure_context(telemetry, logger)
        self.agent = agent
        self.buffer = buffer
        self.name = name
        self.use_twin_q = use_twin_q
        self.q_threshold = q_threshold
        self.twinq_noise_sigma = twinq_noise_sigma
        self.fine_tune_updates = fine_tune_updates
        self.exploration_sigma = exploration_sigma
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def logger(self):
        """The event logger (backward-compatible accessor)."""
        return self.telemetry.logger

    def _note_intervention(self, kind: str, step: int | None = None) -> None:
        """Record one resilience intervention: an ``intervention`` event
        on the stream (heartbeats count these) plus the diagnostics
        rate detector."""
        t = self.telemetry
        t.diagnostics.observe_intervention(kind)
        t.event("intervention", intervention=kind, tuner=self.name,
                step=step)

    def _recommend(
        self, state: np.ndarray, sigma: float | None = None
    ) -> tuple[np.ndarray, dict]:
        """Produce the action for this step; returns (action, twinq diag)."""
        if sigma is None:
            sigma = self.exploration_sigma
        action = self.agent.act(state, explore=False)
        if sigma > 0:
            action = np.clip(
                action + self._rng.normal(0.0, sigma, action.shape),
                0.0,
                1.0,
            )
        diag: dict = {}
        if self.use_twin_q:
            outcome = twin_q_optimize(
                self.agent,
                state,
                action,
                q_threshold=self.q_threshold,
                noise_sigma=self.twinq_noise_sigma,
                rng=self._rng,
                telemetry=self.telemetry,
            )
            action = outcome.action
            diag = {
                "twinq_iterations": outcome.iterations,
                "twinq_accepted": outcome.accepted,
                "original_q": outcome.original_q,
                "final_q": outcome.q_value,
            }
        return action, diag

    def _evaluate_resilient(
        self,
        env: TuningEnv,
        action: np.ndarray,
        resilience: ResiliencePolicy,
        step: int | None = None,
    ):
        """Evaluate ``action`` under the resilience policy.

        Failed (or watchdog-aborted) evaluations are retried up to the
        policy's ``max_attempts``; every burnt attempt and its backoff
        delay are charged into the step's tuning cost (no real sleep —
        the delay is simulated wall-clock, like every other duration
        here).  Returns ``(final outcome, attempts used, extra cost)``
        where the extra cost is the burnt seconds *preceding* the final
        attempt.
        """
        t = self.telemetry
        watchdog = resilience.watchdog
        schedule = (
            resilience.retry.schedule() if resilience.retry is not None else ()
        )
        max_attempts = resilience.max_attempts
        extra_cost = 0.0
        for attempt in range(max_attempts):
            outcome = env.step(action)
            if watchdog is not None:
                verdict = watchdog.inspect(
                    outcome.duration_s, env.default_duration
                )
                if verdict.aborted:
                    # The evaluation is killed at the budget: the step
                    # pays the burnt budget and the reward sees a failure
                    # (Eq. (1) failure semantics, like sim.faults).
                    outcome = replace(
                        outcome,
                        duration_s=verdict.charged_s,
                        success=False,
                        reward=float(
                            env.reward_fn(verdict.charged_s, success=False)
                        ),
                        faults=(*outcome.faults, "watchdog-abort"),
                    )
                    t.count(
                        "resilience.watchdog_aborts_total",
                        help="evaluations aborted by the watchdog",
                        tuner=self.name,
                    )
                    self._note_intervention("watchdog-abort", step)
            if outcome.success or attempt == max_attempts - 1:
                return outcome, attempt + 1, extra_cost
            # The burnt attempt + backoff delay, charged as one float so
            # the ledger's retry account mirrors extra_cost bit-for-bit.
            burnt = burnt_attempt_seconds(
                outcome.duration_s, schedule[attempt]
            )
            extra_cost += burnt
            if t.ledger.enabled:
                t.ledger.charge(
                    "retry",
                    burnt,
                    step=step,
                    attempt=attempt + 1,
                    faults=list(outcome.faults),
                )
            t.count(
                "resilience.retries_total",
                help="failed evaluations retried with backoff",
                tuner=self.name,
            )
            self._note_intervention("retry", step)
        raise AssertionError("unreachable")  # pragma: no cover

    def _charge_step(
        self,
        env: TuningEnv,
        step: int,
        outcome,
        diag: dict,
        fallback: bool,
        recommendation_s: float,
        attempts: int,
        member: int | None = None,
    ) -> None:
        """Ledger charges for one completed online step.

        The final attempt's duration goes to ``evaluation`` (or
        ``watchdog_abort``/``fallback`` when that is how the step ended);
        burnt retries were already charged inside the retry loop, so the
        per-step charges reproduce the session's ``duration_s`` exactly.
        Twin-Q screening adds a *counterfactual* entry: the estimated
        evaluation seconds the optimizer avoided per Eq.(1).
        """
        led = self.telemetry.ledger
        if "watchdog-abort" in outcome.faults:
            account = "watchdog_abort"
        elif fallback:
            account = "fallback"
        else:
            account = "evaluation"
        led.charge(
            account,
            float(outcome.duration_s),
            step=step,
            member=member,
            tuner=self.name,
            success=bool(outcome.success),
            attempts=attempts,
            config=outcome.config,
        )
        led.charge(
            "recommendation",
            float(recommendation_s),
            step=step,
            member=member,
            tuner=self.name,
        )
        if diag.get("twinq_accepted") and diag.get("twinq_iterations", 0) > 0:
            saving = screening_saving(
                env.reward_fn, diag["original_q"], diag["final_q"]
            )
            led.counterfactual(
                "screening",
                saving,
                step=step,
                member=member,
                tuner=self.name,
                original_q=diag["original_q"],
                final_q=diag["final_q"],
                iterations=diag["twinq_iterations"],
            )

    def tune(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
        *,
        session: OnlineSession | None = None,
        start_step: int = 0,
        resilience: ResiliencePolicy | None = None,
        checkpoint=None,
    ) -> OnlineSession:
        """Run up to ``steps`` online tuning steps (5 in the paper).

        ``time_budget_s`` optionally bounds the *total tuning cost*
        (evaluation + recommendation time); the session stops once it is
        exceeded (§5.2.3's tuning-cost constraint).

        ``resilience`` enables retry/backoff, the evaluation watchdog,
        and the safety guard (see :mod:`repro.core.resilience`); with
        ``None`` the loop behaves bit-identically to earlier builds.

        ``session``/``start_step`` resume a checkpointed run: pass the
        restored session and the next step index (which must equal
        ``len(session.steps)``); the loop continues from there as if it
        had never stopped.  ``checkpoint`` is a
        :class:`~repro.core.persistence.CheckpointManager` to snapshot
        after each step; on ``KeyboardInterrupt`` a final checkpoint is
        written before the interrupt propagates.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        if session is not None and start_step != len(session.steps):
            raise ValueError(
                "start_step must equal len(session.steps) when resuming"
            )
        t = self.telemetry
        if hasattr(env, "attach_telemetry"):
            env.attach_telemetry(t)
        if self.buffer is not None and hasattr(self.buffer, "set_telemetry"):
            self.buffer.set_telemetry(t)
        if hasattr(self.agent, "telemetry"):
            self.agent.telemetry = t
        if session is None:
            session = OnlineSession(
                tuner=self.name,
                workload=env.runner.workload.code,
                dataset=env.runner.dataset.label,
                default_duration_s=env.default_duration,
            )
        guard = resilience.guard if resilience is not None else None
        # Resume from what the metric collector last reported (identical
        # to the clean state on a fresh env), so a restored session sees
        # exactly the observation the killed one would have acted on.
        state = env.observation if hasattr(env, "observation") else env.state
        if resilience is not None:
            state, _ = sanitize_state(state)
        try:
            with t.phase("online.tune"), t.span(
                "online.tune", tuner=self.name, workload=session.workload,
                dataset=session.dataset,
            ):
                for step in range(start_step, steps):
                    with t.phase("online.step"), t.span(
                        "online.step", step=step
                    ):
                        fallback = False
                        sigma: float | None = None
                        t0 = time.perf_counter()
                        if guard is not None and guard.should_fallback:
                            # A bad streak: stop exploring, revert to the
                            # best-known-good configuration.
                            action = guard.trigger_fallback()
                            diag: dict = {}
                            fallback = True
                            t.count(
                                "resilience.fallbacks_total",
                                help="safety-guard fallbacks to "
                                "best-known-good configuration",
                                tuner=self.name,
                            )
                            self._note_intervention("fallback", step)
                        else:
                            sigma = (
                                guard.effective_sigma(self.exploration_sigma)
                                if guard is not None
                                else self.exploration_sigma
                            )
                            with t.span("online.recommend"):
                                action, diag = self._recommend(
                                    state, sigma=sigma
                                )
                        recommendation_s = time.perf_counter() - t0

                        with t.span("online.evaluate"):
                            if resilience is not None:
                                outcome, attempts, extra_cost = (
                                    self._evaluate_resilient(
                                        env, action, resilience, step
                                    )
                                )
                            else:
                                outcome = env.step(action)
                                attempts, extra_cost = 1, 0.0
                        next_state = outcome.next_state
                        if resilience is not None:
                            next_state, n_repaired = sanitize_state(next_state)
                            if n_repaired:
                                t.count(
                                    "resilience.state_repairs_total",
                                    n_repaired,
                                    help="NaN observation entries repaired",
                                    tuner=self.name,
                                )
                                self._note_intervention("state-repair", step)
                        state = next_state
                        if guard is not None:
                            guard.record(
                                outcome.success, outcome.reward, outcome.action
                            )

                        if self.buffer is not None:
                            self.buffer.push(
                                Transition(
                                    state=outcome.state,
                                    action=outcome.action,
                                    reward=outcome.reward,
                                    next_state=next_state,
                                )
                            )
                            if self.buffer.can_sample(self.agent.hp.batch_size):
                                with t.span("online.finetune"):
                                    for _ in range(self.fine_tune_updates):
                                        batch = self.buffer.sample(
                                            self.agent.hp.batch_size
                                        )
                                        d = self.agent.update(batch)
                                        if isinstance(
                                            self.buffer, PrioritizedReplayBuffer
                                        ):
                                            self.buffer.update_priorities(
                                                batch.indices, d["td_errors"]
                                            )

                        step_cost_s = float(outcome.duration_s + extra_cost)
                        session.add(
                            TuningStepRecord(
                                step=step,
                                duration_s=step_cost_s,
                                recommendation_s=recommendation_s,
                                reward=outcome.reward,
                                success=outcome.success,
                                config=outcome.config,
                                action=outcome.action,
                                twinq_iterations=diag.get("twinq_iterations"),
                                twinq_accepted=diag.get("twinq_accepted"),
                                original_q=diag.get("original_q"),
                                final_q=diag.get("final_q"),
                                attempts=attempts,
                                aborted="watchdog-abort" in outcome.faults,
                                fallback=fallback,
                                faults=outcome.faults,
                            )
                        )
                        if t.ledger.enabled:
                            self._charge_step(
                                env, step, outcome, diag, fallback,
                                recommendation_s, attempts,
                            )
                        # The paper's cost split: recommendation time is the
                        # tuner's own overhead, evaluation time is what the
                        # Twin-Q Optimizer exists to reduce (Figure 7).
                        t.count(
                            "online.steps_total",
                            help="online tuning steps served",
                            tuner=self.name,
                        )
                        t.count(
                            "online.recommendation_seconds_total",
                            recommendation_s,
                            help="cumulative recommendation time",
                            tuner=self.name,
                        )
                        t.count(
                            "online.evaluation_seconds_total",
                            step_cost_s,
                            help="cumulative configuration evaluation time",
                            tuner=self.name,
                        )
                        t.observe(
                            "online.step_reward",
                            float(outcome.reward),
                            help="per-step reward",
                            tuner=self.name,
                        )
                        # Learning-health detectors: pure observers.  The
                        # extra critic forward pass for q_pred consumes no
                        # RNG and is skipped entirely when diagnostics are
                        # off, so science stays bit-identical either way.
                        if t.diagnostics.enabled:
                            q_pred = diag.get("final_q")
                            if q_pred is None and hasattr(self.agent, "min_q"):
                                q_pred = float(
                                    self.agent.min_q(
                                        outcome.state, outcome.action
                                    )
                                )
                            t.diagnostics.observe_step(
                                step=step,
                                reward=float(outcome.reward),
                                success=bool(outcome.success),
                                q_pred=q_pred,
                                sigma=sigma,
                            )
                            # Drain before the step event so the heartbeat
                            # written on "online-step" reflects this step's
                            # alerts.
                            for alert in t.diagnostics.drain_alerts():
                                t.event("alert", **alert.as_event_fields())
                        t.event(
                            "online-step",
                            tuner=self.name,
                            step=step,
                            duration_s=step_cost_s,
                            reward=float(outcome.reward),
                            success=bool(outcome.success),
                            recommendation_s=float(recommendation_s),
                            attempts=attempts,
                            fallback=fallback,
                            faults=list(outcome.faults),
                        )
                        if checkpoint is not None:
                            checkpoint.on_step(session, step + 1)
                        if (
                            time_budget_s is not None
                            and session.total_tuning_seconds >= time_budget_s
                        ):
                            break
        except KeyboardInterrupt:
            # Killed mid-session: persist everything completed so far so
            # --resume can continue bit-identically, then propagate.  The
            # save is skipped when the cadence already snapshotted this
            # progress at a clean step boundary — the interrupt lands
            # mid-step with RNG streams advanced for the in-flight
            # recommendation, and those must not overwrite clean state.
            if checkpoint is not None:
                checkpoint.save_if_stale(session, len(session.steps))
            raise
        successes = [s for s in session.steps if s.success]
        if t.manifest is not None:
            t.manifest.record_stage(
                "online-tune",
                tuner=self.name,
                workload=session.workload,
                dataset=session.dataset,
                steps=len(session.steps),
                best_duration_s=(
                    session.best_duration_s if successes else None
                ),
                total_tuning_seconds=session.total_tuning_seconds,
            )
        return session
