"""Lockstep online tuning for a population of independent sessions.

:class:`PopulationTuner` drives N fully independent online tuning
sessions — each with its own agent, replay buffer, environment, RNG
streams, and resilience policy — through one lockstep loop that batches
every *deterministic* tensor computation across the population:

* the greedy actor forward (one stacked ``(N, 1, 9)`` pass),
* the Twin-Q Optimizer's ``min(Q1, Q2)`` screenings (one stacked pass
  per escalation round, all sessions' candidate fans at once),
* the configuration evaluation (one shared analytic simulator pass via
  :class:`~repro.envs.population.VectorTuningEnv`).

Everything *stochastic* or session-local stays scalar and runs per
member in member order: exploration noise, Twin-Q candidate draws,
retries, safety-guard bookkeeping, replay pushes, fine-tune updates,
record construction, and telemetry.  Because every member owns disjoint
generator objects, interleaving members across lockstep phases cannot
reorder any single member's draw sequence — which is the whole
bit-identity argument, phase by phase:

1. a member's per-step draw order (exploration noise → Twin-Q fan →
   simulator noise/tails → fault perturbation → metric dropout →
   retries → fine-tune) is preserved exactly, because the lockstep
   phases run in that order and each phase visits members in order;
2. the batched tensor math is bit-identical per row to the scalar calls
   (:mod:`repro.nn.population`, :mod:`repro.agents.population`,
   :mod:`repro.envs.population` each pin their own layer of this);
3. the scalar fine-tune updates write *through* the stacked parameter
   views, so batched forwards always see the latest per-member weights.

The one documented divergence is ``recommendation_s``: the population
measures one batched recommendation wall-clock per lockstep iteration
and splits it equally among participating members, so this field (and
anything derived from it, i.e. ``time_budget_s`` cut-offs) is
wall-clock-dependent exactly as it is in sequential runs.
:func:`repro.core.result.sessions_equal` already excludes it.

Pinned by ``tests/test_population_equivalence.py`` and the
``-m determinism`` population cases.
"""

from __future__ import annotations

import inspect
import time
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.core.online import OnlineTuner
from repro.core.resilience import (
    ResiliencePolicy,
    burnt_attempt_seconds,
    sanitize_state,
)
from repro.core.result import OnlineSession, TuningStepRecord
from repro.core.twinq import twin_q_optimize
from repro.envs.population import VectorTuningEnv
from repro.envs.tuning_env import StepOutcome, TuningEnv
from repro.replay.base import Transition
from repro.replay.per import PrioritizedReplayBuffer

__all__ = ["PopulationMember", "PopulationTuner", "population_seed_plan"]

#: Candidate budget per Twin-Q escalation round — must track the scalar
#: optimizer's default, which the online loop always uses.
_TWINQ_MAX_ITERATIONS = int(
    inspect.signature(twin_q_optimize).parameters["max_iterations"].default
)


def population_seed_plan(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent member seeds from one base seed.

    Uses ``SeedSequence.spawn`` so the members' stream families are
    provably non-overlapping; each returned seed is an ordinary integer
    usable anywhere a scalar ``--seed`` is (a population member ``i`` is
    exactly the sequential run ``--seed plan[i]``).
    """
    if n < 1:
        raise ValueError("population size must be >= 1")
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in np.random.SeedSequence(base_seed).spawn(n)
    ]


@dataclass
class PopulationMember:
    """One session of the population: tuner + environment + run state."""

    tuner: OnlineTuner
    env: TuningEnv
    resilience: ResiliencePolicy | None = None
    session: OnlineSession | None = None
    start_step: int = 0
    # -- runtime state owned by the lockstep loop -----------------------
    state: np.ndarray = field(default=None, repr=False)  # type: ignore
    done: bool = field(default=False, repr=False)
    #: isolated from the lockstep after non-finite parameters; finished
    #: sequentially so one diverged member can't poison the stacked math
    quarantined: bool = field(default=False, repr=False)


class PopulationTuner:
    """Runs N independent online tuning sessions in lockstep.

    ``tune`` is bit-identical (per member) to calling each member's
    :meth:`OnlineTuner.tune` sequentially with the same arguments —
    see the module docstring for the argument and the test suite for
    the enforcement.
    """

    def __init__(
        self,
        members: Sequence[PopulationMember],
        *,
        param_allocator=None,
    ):
        members = list(members)
        if not members:
            raise ValueError("population needs at least one member")
        for attr in ("tuner", "env"):
            objs = [getattr(m, attr) for m in members]
            if len({id(o) for o in objs}) != len(objs):
                raise ValueError(
                    f"population members must have distinct {attr}s"
                )
        for m in members:
            if m.session is not None and m.start_step != len(m.session.steps):
                raise ValueError(
                    "start_step must equal len(session.steps) when resuming"
                )
            if m.tuner.use_twin_q and m.tuner.twinq_noise_sigma <= 0:
                raise ValueError("noise_sigma must be positive")
        self.members = members
        # These validate distinctness and shared shapes/workloads.
        self.venv = VectorTuningEnv([m.env for m in members])
        from repro.agents.population import PopulationTD3View

        self.view = PopulationTD3View(
            [m.tuner.agent for m in members], allocator=param_allocator
        )
        n = len(members)
        self._states = np.zeros((n, self.view.state_dim))
        self._actions = np.zeros((n, self.view.action_dim))
        self._originals = np.zeros((n, self.view.action_dim))
        self._noise = np.zeros((n, self.view.action_dim))
        self._cands = np.zeros(
            (n, _TWINQ_MAX_ITERATIONS, self.view.action_dim)
        )

    # ------------------------------------------------------------ factory

    @classmethod
    def from_deepcat(
        cls,
        tuners: Sequence,
        envs: Sequence[TuningEnv],
        *,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        telemetry=None,
        resiliences: Sequence[ResiliencePolicy | None] | None = None,
        sessions: Sequence[OnlineSession | None] | None = None,
        start_steps: Sequence[int] | None = None,
        param_allocator=None,
    ) -> "PopulationTuner":
        """Build a population from :class:`~repro.core.deepcat.DeepCAT`
        instances, mirroring ``DeepCAT.tune_online``'s construction of
        the per-session :class:`OnlineTuner` (same name, thresholds, and
        — critically — the same ``_online_rng`` stream).
        """
        tuners = list(tuners)
        envs = list(envs)
        if len(tuners) != len(envs):
            raise ValueError("need one environment per tuner")
        n = len(tuners)
        resiliences = list(resiliences) if resiliences is not None else [None] * n
        sessions = list(sessions) if sessions is not None else [None] * n
        start_steps = list(start_steps) if start_steps is not None else [0] * n
        if not (len(resiliences) == len(sessions) == len(start_steps) == n):
            raise ValueError("per-member argument lists must match in length")
        members = []
        for dc, env, res, session, start in zip(
            tuners, envs, resiliences, sessions, start_steps
        ):
            dc._record_provenance(telemetry, env)
            online = OnlineTuner(
                dc.agent,
                dc.buffer,
                name="DeepCAT" if dc.use_twin_q else "DeepCAT-noTwinQ",
                use_twin_q=dc.use_twin_q,
                q_threshold=dc.q_threshold,
                twinq_noise_sigma=dc.twinq_noise_sigma,
                fine_tune_updates=fine_tune_updates,
                exploration_sigma=exploration_sigma,
                rng=dc._online_rng,
                telemetry=telemetry,
            )
            members.append(
                PopulationMember(
                    tuner=online,
                    env=env,
                    resilience=res,
                    session=session,
                    start_step=start,
                )
            )
        return cls(members, param_allocator=param_allocator)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def sessions(self) -> list[OnlineSession]:
        return [m.session for m in self.members]

    # ----------------------------------------------------------- resilience

    def _finish_resilient(
        self,
        m: PopulationMember,
        first_outcome: StepOutcome,
        action: np.ndarray,
        step: int,
        member: int | None = None,
    ) -> tuple[StepOutcome, int, float]:
        """``OnlineTuner._evaluate_resilient`` with attempt 1 precomputed
        (the batched population evaluation); retries fall back to scalar
        ``env.step`` on the member's own streams.
        """
        mt = m.tuner
        t = mt.telemetry
        resilience = m.resilience
        watchdog = resilience.watchdog
        schedule = (
            resilience.retry.schedule() if resilience.retry is not None else ()
        )
        max_attempts = resilience.max_attempts
        extra_cost = 0.0
        outcome = first_outcome
        for attempt in range(max_attempts):
            if attempt > 0:
                outcome = m.env.step(action)
            if watchdog is not None:
                verdict = watchdog.inspect(
                    outcome.duration_s, m.env.default_duration
                )
                if verdict.aborted:
                    outcome = replace(
                        outcome,
                        duration_s=verdict.charged_s,
                        success=False,
                        reward=float(
                            m.env.reward_fn(verdict.charged_s, success=False)
                        ),
                        faults=(*outcome.faults, "watchdog-abort"),
                    )
                    t.count(
                        "resilience.watchdog_aborts_total",
                        help="evaluations aborted by the watchdog",
                        tuner=mt.name,
                    )
                    mt._note_intervention("watchdog-abort", step)
            if outcome.success or attempt == max_attempts - 1:
                return outcome, attempt + 1, extra_cost
            burnt = burnt_attempt_seconds(
                outcome.duration_s, schedule[attempt]
            )
            extra_cost += burnt
            if t.ledger.enabled:
                t.ledger.charge(
                    "retry",
                    burnt,
                    step=step,
                    member=member,
                    attempt=attempt + 1,
                    faults=list(outcome.faults),
                )
            t.count(
                "resilience.retries_total",
                help="failed evaluations retried with backoff",
                tuner=mt.name,
            )
            mt._note_intervention("retry", step)
        raise AssertionError("unreachable")  # pragma: no cover

    # ---------------------------------------------------------------- twinq

    def _twinq_resolve(
        self, indices: list[int], step: int
    ) -> dict[int, dict]:
        """Run the Twin-Q Optimizer for every member in ``indices``,
        batching each escalation round's critic scoring across members.

        Replicates :func:`repro.core.twinq.twin_q_optimize` (wrapper
        counters included) member by member: candidate fans are drawn
        eagerly per member in member order — exactly as the scalar
        ``_optimize`` builds all three rounds up front — and round ``r``
        is scored for every still-unresolved member in one stacked
        critic pass whose rows are bit-identical to ``twin_q_batch``.
        """
        members = self.members
        for i in indices:
            self._originals[i] = np.clip(
                np.asarray(self._actions[i], dtype=np.float64), 0.0, 1.0
            )
        min_qs = self.view.min_q(self._states, self._originals)

        n_cand = _TWINQ_MAX_ITERATIONS
        pending: dict[int, tuple] = {}  # i -> (round0, round1, round2)
        resolved: dict[int, tuple] = {}  # i -> (q, iters, accepted)
        scored: dict[int, int] = {}
        for i in indices:
            mt = members[i].tuner
            original_q = min_qs[i]
            if original_q >= mt.q_threshold:
                resolved[i] = (original_q, 0, True)
                continue
            rng = mt._rng
            original = self._originals[i]
            sigma = mt.twinq_noise_sigma
            local_sigmas = sigma * (
                1.0 + 2.0 * np.arange(n_cand) / max(n_cand - 1, 1)
            )
            pending[i] = (
                np.clip(
                    original[None, :]
                    + rng.normal(0.0, 1.0, (n_cand, original.size))
                    * local_sigmas[:, None],
                    0.0,
                    1.0,
                ),
                np.clip(
                    original[None, :]
                    + rng.normal(0.0, 4.0 * sigma, (n_cand, original.size)),
                    0.0,
                    1.0,
                ),
                rng.uniform(0.0, 1.0, (n_cand, original.size)),
            )
            scored[i] = 0

        for r in range(3):
            need = [i for i in indices if i in pending]
            if not need:
                break
            for i in need:
                self._cands[i] = pending[i][r]
            scores = self.view.twin_q_rows(self._states, self._cands)
            for i in need:
                qs = scores[i]
                above = np.flatnonzero(qs >= members[i].tuner.q_threshold)
                if above.size:
                    first = int(above[0])
                    scored[i] += first + 1
                    self._actions[i] = pending[i][r][first]
                    resolved[i] = (float(qs[first]), scored[i], True)
                    del pending[i]
                else:
                    scored[i] += n_cand
        for i in list(pending):
            # Nothing cleared Q_th: fall back to the original
            # recommendation, exactly as the scalar optimizer does.
            self._actions[i] = self._originals[i]
            resolved[i] = (min_qs[i], scored[i], False)
            del pending[i]

        diags: dict[int, dict] = {}
        for i in indices:
            mt = members[i].tuner
            t = mt.telemetry
            q_value, iterations, accepted = resolved[i]
            original_q = min_qs[i]
            with t.phase("twinq.optimize"), t.span(
                "twinq.optimize"
            ) as span:
                span.set_attr("iterations", iterations)
                span.set_attr("accepted", accepted)
            t.count(
                "twinq.invocations_total",
                help="recommendations screened by the Twin-Q Optimizer",
            )
            t.count(
                "twinq.iterations_total",
                iterations,
                help="candidate actions scored across all screenings",
            )
            if iterations == 0:
                t.count(
                    "twinq.passthrough_total",
                    help="recommendations accepted without perturbation",
                )
            elif accepted:
                t.count(
                    "twinq.accepted_total",
                    help="perturbed candidates that cleared Q_th",
                )
            else:
                t.count(
                    "twinq.rejected_total",
                    help="screenings that fell back to the original action",
                )
            t.observe(
                "twinq.q_improvement",
                q_value - original_q,
                help="min(Q1,Q2) gain of the executed action over the "
                "original",
            )
            diags[i] = {
                "twinq_iterations": iterations,
                "twinq_accepted": accepted,
                "original_q": original_q,
                "final_q": q_value,
            }
        return diags

    # ----------------------------------------------------------------- tune

    def tune(
        self,
        steps: int = 5,
        time_budget_s: float | None = None,
        checkpoint=None,
    ) -> list[OnlineSession]:
        """Run every member for up to ``steps`` online tuning steps.

        Returns the per-member sessions in member order.  ``checkpoint``
        is a :class:`~repro.core.persistence.PopulationCheckpointManager`
        snapshotting the whole population after each lockstep iteration;
        on ``KeyboardInterrupt`` a final snapshot is written before the
        interrupt propagates (mirroring :meth:`OnlineTuner.tune`).
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        members = self.members
        self.begin(steps)
        lead = members[0].tuner.telemetry
        try:
            with lead.phase("population.tune"), lead.span(
                "population.tune", n=len(members), steps=steps
            ):
                for step in range(steps):
                    status = self.run_round(step, time_budget_s)
                    if status == "complete":
                        break
                    if status == "stepped" and checkpoint is not None:
                        checkpoint.on_step(self.sessions, step + 1)
                self._finish_quarantined(steps, time_budget_s)
        except KeyboardInterrupt:
            if checkpoint is not None:
                checkpoint.save_if_stale(
                    self.sessions,
                    [len(m.session.steps) for m in members],
                )
            raise
        self.record_manifests()
        return self.sessions

    def begin(self, steps: int) -> None:
        """Prepare every member for lockstep rounds (idempotent setup):
        attach telemetry, create missing sessions, seed the runtime
        ``state``/``done`` flags.  Split out of :meth:`tune` so a shard
        worker can drive rounds one at a time via :meth:`run_round`."""
        for m in self.members:
            mt = m.tuner
            t = mt.telemetry
            if hasattr(m.env, "attach_telemetry"):
                m.env.attach_telemetry(t)
            if mt.buffer is not None and hasattr(mt.buffer, "set_telemetry"):
                mt.buffer.set_telemetry(t)
            if hasattr(mt.agent, "telemetry"):
                mt.agent.telemetry = t
            if m.session is None:
                m.session = OnlineSession(
                    tuner=mt.name,
                    workload=m.env.runner.workload.code,
                    dataset=m.env.runner.dataset.label,
                    default_duration_s=m.env.default_duration,
                )
            state = (
                m.env.observation
                if hasattr(m.env, "observation")
                else m.env.state
            )
            if m.resilience is not None:
                state, _ = sanitize_state(state)
            m.state = state
            m.done = m.start_step >= steps

    def run_round(
        self, step: int, time_budget_s: float | None = None
    ) -> str:
        """Drive one lockstep round; requires a prior :meth:`begin`.

        Returns ``"stepped"`` when members advanced, ``"idle"`` when no
        member was eligible this step but some remain (staggered
        ``start_step`` resumes), and ``"complete"`` when every member is
        done or quarantined.
        """
        members = self.members
        active = [
            i
            for i, m in enumerate(members)
            if not m.done and not m.quarantined and step >= m.start_step
        ]
        if active:
            active = self._screen_nonfinite(active, step)
        if not active:
            if all(m.done or m.quarantined for m in members):
                return "complete"
            return "idle"
        self._lockstep(step, active, time_budget_s)
        return "stepped"

    def finish(self, steps: int, time_budget_s: float | None = None) -> None:
        """Post-round teardown for callers driving :meth:`run_round`
        directly: sequential quarantine finish + manifest records."""
        self._finish_quarantined(steps, time_budget_s)
        self.record_manifests()

    def record_manifests(self) -> None:
        for m in self.members:
            t = m.tuner.telemetry
            successes = [s for s in m.session.steps if s.success]
            if t.manifest is not None:
                t.manifest.record_stage(
                    "online-tune",
                    tuner=m.tuner.name,
                    workload=m.session.workload,
                    dataset=m.session.dataset,
                    steps=len(m.session.steps),
                    best_duration_s=(
                        m.session.best_duration_s if successes else None
                    ),
                    total_tuning_seconds=m.session.total_tuning_seconds,
                )

    def _screen_nonfinite(self, active: list[int], step: int) -> list[int]:
        """Drop members whose nets went non-finite from the lockstep.

        A diverged member's NaN parameters would flow through the shared
        stacked forwards; instead it is flagged ``quarantined`` and
        finished sequentially by :meth:`_finish_quarantined`.  Pure
        observation on the healthy path — no RNG draws, no writes — so
        an all-finite population is bit-identical with or without the
        screen.
        """
        finite = self.view.members_finite()
        if all(finite[i] for i in active):
            return active
        kept = []
        for i in active:
            if finite[i]:
                kept.append(i)
                continue
            m = self.members[i]
            m.quarantined = True
            t = m.tuner.telemetry
            t.count(
                "population.quarantined_total",
                help="members isolated from the lockstep after "
                     "non-finite parameters",
                tuner=m.tuner.name,
            )
            t.event("member-quarantined", member=i, step=step,
                    tuner=m.tuner.name)
        return kept

    def _finish_quarantined(
        self, steps: int, time_budget_s: float | None
    ) -> None:
        """Run each quarantined member's remaining steps alone via the
        scalar :meth:`OnlineTuner.tune` path.  Its nets are already
        damaged, so even the sequential finish may fail — that failure
        is contained to the member and recorded, never propagated."""
        for i, m in enumerate(self.members):
            if not m.quarantined or m.done:
                continue
            start = len(m.session.steps) if m.session is not None else 0
            if start >= steps:
                continue
            t = m.tuner.telemetry
            try:
                m.tuner.tune(
                    m.env, steps=steps, time_budget_s=time_budget_s,
                    session=m.session, start_step=start,
                    resilience=m.resilience,
                )
            except Exception as exc:
                t.count(
                    "population.quarantine_failures_total",
                    help="quarantined members whose sequential finish "
                         "also failed",
                    tuner=m.tuner.name,
                )
                t.event(
                    "member-quarantine-failed", member=i,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def _lockstep(
        self, step: int, active: list[int], time_budget_s: float | None
    ) -> None:
        """One population step: batched recommend + evaluate, scalar tail."""
        members = self.members
        lead = members[0].tuner.telemetry
        t0 = time.perf_counter()

        # Phase A+B+C — recommendation.  Guard fallbacks and exploration
        # sigmas first (scalar, member order), then one stacked actor
        # pass, then per-member exploration noise, then the batched
        # Twin-Q resolution.
        fallback: dict[int, bool] = {}
        sigma: dict[int, float | None] = {}
        diags: dict[int, dict] = {}
        recommend_idx: list[int] = []
        with lead.span("population.recommend", step=step):
            for i in active:
                m = members[i]
                mt = m.tuner
                guard = (
                    m.resilience.guard if m.resilience is not None else None
                )
                if guard is not None and guard.should_fallback:
                    self._actions[i] = guard.trigger_fallback()
                    fallback[i] = True
                    sigma[i] = None
                    diags[i] = {}
                    mt.telemetry.count(
                        "resilience.fallbacks_total",
                        help="safety-guard fallbacks to "
                        "best-known-good configuration",
                        tuner=mt.name,
                    )
                    mt._note_intervention("fallback", step)
                else:
                    fallback[i] = False
                    sigma[i] = (
                        guard.effective_sigma(mt.exploration_sigma)
                        if guard is not None
                        else mt.exploration_sigma
                    )
                    self._states[i] = m.state
                    recommend_idx.append(i)
            if recommend_idx:
                acts = self.view.act(self._states)
                # Exploration noise: the *draws* stay scalar per member,
                # in member order (each member owns its own generator, so
                # merging them would change the streams); only the
                # elementwise add+clip over the collected rows is batched,
                # which is bit-identical to the per-member expression.
                noisy: list[int] = []
                for i in recommend_idx:
                    mt = members[i].tuner
                    if sigma[i] > 0:
                        self._noise[i] = mt._rng.normal(
                            0.0, sigma[i], (self.view.action_dim,)
                        )
                        noisy.append(i)
                    else:
                        self._actions[i] = acts[i]
                if noisy:
                    rows = np.asarray(noisy)
                    self._actions[rows] = np.clip(
                        acts[rows] + self._noise[rows], 0.0, 1.0
                    )
                twinq_idx = [
                    i for i in recommend_idx if members[i].tuner.use_twin_q
                ]
                if twinq_idx:
                    diags.update(self._twinq_resolve(twinq_idx, step))
                for i in recommend_idx:
                    diags.setdefault(i, {})
        # One batched recommendation, split equally; sessions_equal
        # excludes this wall-clock field (module docstring).
        rec_share = (time.perf_counter() - t0) / len(active)

        # Phase D — evaluation: attempt 1 for every member through one
        # shared simulator pass; retries scalar per member.
        with lead.span("population.evaluate", step=step):
            first = self.venv.step(self._actions[active], indices=active)
            resolved: list[tuple[StepOutcome, int, float]] = []
            for pos, i in enumerate(active):
                m = members[i]
                if m.resilience is not None:
                    resolved.append(
                        self._finish_resilient(
                            m, first[pos], self._actions[i], step, member=i
                        )
                    )
                else:
                    resolved.append((first[pos], 1, 0.0))

        # Phase E — scalar tail per member, in member order: replay push,
        # fine-tune (writes through the stacked views), record, counters.
        # Sinks are put in deferred-flush mode for the whole tail, so the
        # round issues one flush per distinct event log / ledger instead
        # of one per member (content and order unchanged).
        with ExitStack() as flushes:
            seen: set[int] = set()
            for i in active:
                t = members[i].tuner.telemetry
                for sink in (t.logger, t.ledger):
                    if id(sink) not in seen:
                        seen.add(id(sink))
                        flushes.enter_context(sink.deferred())
            self._scalar_tail(
                step, active, resolved, diags, fallback, sigma,
                rec_share, time_budget_s,
            )

    def _scalar_tail(
        self,
        step: int,
        active: list[int],
        resolved: list[tuple[StepOutcome, int, float]],
        diags: dict[int, dict],
        fallback: dict[int, bool],
        sigma: dict[int, float | None],
        rec_share: float,
        time_budget_s: float | None,
    ) -> None:
        members = self.members
        for pos, i in enumerate(active):
            m = members[i]
            mt = m.tuner
            t = mt.telemetry
            outcome, attempts, extra_cost = resolved[pos]
            next_state = outcome.next_state
            if m.resilience is not None:
                next_state, n_repaired = sanitize_state(next_state)
                if n_repaired:
                    t.count(
                        "resilience.state_repairs_total",
                        n_repaired,
                        help="NaN observation entries repaired",
                        tuner=mt.name,
                    )
                    mt._note_intervention("state-repair", step)
            m.state = next_state
            guard = m.resilience.guard if m.resilience is not None else None
            if guard is not None:
                guard.record(outcome.success, outcome.reward, outcome.action)

            if mt.buffer is not None:
                mt.buffer.push(
                    Transition(
                        state=outcome.state,
                        action=outcome.action,
                        reward=outcome.reward,
                        next_state=next_state,
                    )
                )
                if mt.buffer.can_sample(mt.agent.hp.batch_size):
                    with t.span("online.finetune"):
                        for _ in range(mt.fine_tune_updates):
                            batch = mt.buffer.sample(mt.agent.hp.batch_size)
                            d = mt.agent.update(batch)
                            if isinstance(
                                mt.buffer, PrioritizedReplayBuffer
                            ):
                                mt.buffer.update_priorities(
                                    batch.indices, d["td_errors"]
                                )

            step_cost_s = float(outcome.duration_s + extra_cost)
            diag = diags[i]
            m.session.add(
                TuningStepRecord(
                    step=step,
                    duration_s=step_cost_s,
                    recommendation_s=rec_share,
                    reward=outcome.reward,
                    success=outcome.success,
                    config=outcome.config,
                    action=outcome.action,
                    twinq_iterations=diag.get("twinq_iterations"),
                    twinq_accepted=diag.get("twinq_accepted"),
                    original_q=diag.get("original_q"),
                    final_q=diag.get("final_q"),
                    attempts=attempts,
                    aborted="watchdog-abort" in outcome.faults,
                    fallback=fallback[i],
                    faults=outcome.faults,
                )
            )
            if t.ledger.enabled:
                # Same per-step charge shape as the scalar loop; the
                # batched recommendation is split equally (rec_share).
                mt._charge_step(
                    m.env, step, outcome, diag, fallback[i], rec_share,
                    attempts, member=i,
                )
            t.count(
                "online.steps_total",
                help="online tuning steps served",
                tuner=mt.name,
            )
            t.count(
                "online.recommendation_seconds_total",
                rec_share,
                help="cumulative recommendation time",
                tuner=mt.name,
            )
            t.count(
                "online.evaluation_seconds_total",
                step_cost_s,
                help="cumulative configuration evaluation time",
                tuner=mt.name,
            )
            t.observe(
                "online.step_reward",
                float(outcome.reward),
                help="per-step reward",
                tuner=mt.name,
            )
            if t.diagnostics.enabled:
                q_pred = diag.get("final_q")
                if q_pred is None and hasattr(mt.agent, "min_q"):
                    q_pred = float(
                        mt.agent.min_q(outcome.state, outcome.action)
                    )
                t.diagnostics.observe_step(
                    step=step,
                    reward=float(outcome.reward),
                    success=bool(outcome.success),
                    q_pred=q_pred,
                    sigma=sigma[i],
                )
                for alert in t.diagnostics.drain_alerts():
                    t.event("alert", **alert.as_event_fields())
            t.event(
                "online-step",
                tuner=mt.name,
                step=step,
                duration_s=step_cost_s,
                reward=float(outcome.reward),
                success=bool(outcome.success),
                recommendation_s=float(rec_share),
                attempts=attempts,
                fallback=fallback[i],
                faults=list(outcome.faults),
            )
            if (
                time_budget_s is not None
                and m.session.total_tuning_seconds >= time_budget_s
            ):
                m.done = True
