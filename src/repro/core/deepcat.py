"""DeepCAT — cost-efficient online configuration auto-tuning (the paper's
primary contribution).

Composition (Figure 1):

* **Agent**: TD3 (twin critics mitigate DDPG's value overestimation).
* **Replay**: RDPER — reward-threshold dual pools with a guaranteed
  high-reward batch fraction β (0.6 per Figure 11).
* **Online**: Twin-Q Optimizer screens every recommendation against
  ``Q_th`` (0.3 per Figure 12) before paying for a real evaluation.

Ablation flags reproduce the paper's §5.1 experiments: ``use_rdper=False``
trains with conventional uniform replay (Figure 4), ``use_twin_q=False``
disables the optimizer during online tuning (Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.agents.td3 import TD3Agent
from repro.core.offline import OfflineTrainer, OfflineTrainingLog
from repro.core.online import OnlineTuner
from repro.core.result import OnlineSession
from repro.envs.tuning_env import TuningEnv
from repro.replay.rdper import RewardDrivenReplayBuffer
from repro.replay.uniform import UniformReplayBuffer

__all__ = ["DeepCAT"]


class DeepCAT:
    """The DeepCAT tuner.

    Parameters
    ----------
    state_dim, action_dim:
        Environment dimensions (9 load-average features, 32 parameters).
    seed:
        Seed (or generator) for all of the tuner's stochastic parts.
    hp:
        Agent hyper-parameters; defaults follow
        :class:`~repro.agents.base.AgentHyperParams`.
    reward_threshold:
        RDPER's ``R_th`` splitting high- from low-reward transitions.
    beta:
        RDPER's high-reward batch fraction (paper: 0.6).
    q_threshold:
        Twin-Q Optimizer's ``Q_th``.  The paper picks 0.3 on its own
        critics' Q scale; the analogous sweep on this implementation
        (Figure 12 bench) puts the cost/quality sweet spot at 0.4 —
        one notch below the best-config-but-expensive 0.5, exactly
        the selection rule of §5.4.2.
    use_rdper, use_twin_q:
        Ablation switches for Figures 4 and 5.
    buffer_capacity:
        Total replay capacity across both pools.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        seed: int | np.random.Generator = 0,
        hp: AgentHyperParams | None = None,
        reward_threshold: float = 0.3,
        beta: float = 0.6,
        q_threshold: float = 0.4,
        twinq_noise_sigma: float = 0.1,
        use_rdper: bool = True,
        use_twin_q: bool = True,
        buffer_capacity: int = 20_000,
    ):
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        agent_rng, buffer_rng, online_rng = rng.spawn(3)
        self.hp = hp if hp is not None else AgentHyperParams()
        self.agent = TD3Agent(state_dim, action_dim, agent_rng, self.hp)
        self.use_rdper = use_rdper
        self.use_twin_q = use_twin_q
        self.reward_threshold = reward_threshold
        self.beta = beta
        self.q_threshold = q_threshold
        self.twinq_noise_sigma = twinq_noise_sigma
        if use_rdper:
            self.buffer = RewardDrivenReplayBuffer(
                buffer_capacity,
                state_dim,
                action_dim,
                buffer_rng,
                reward_threshold=reward_threshold,
                beta=beta,
            )
        else:
            self.buffer = UniformReplayBuffer(
                buffer_capacity, state_dim, action_dim, buffer_rng
            )
        self._online_rng = online_rng
        self.offline_log: OfflineTrainingLog | None = None

    # ------------------------------------------------------------ factory

    @classmethod
    def from_env(
        cls, env: TuningEnv, seed: int | np.random.Generator = 0, **kwargs
    ) -> "DeepCAT":
        """Construct a tuner sized for ``env``."""
        return cls(env.state_dim, env.action_dim, seed=seed, **kwargs)

    # ------------------------------------------------------------- stages

    def train_offline(
        self, env: TuningEnv, iterations: int, updates_per_step: int = 1,
        callback=None, telemetry=None,
    ) -> OfflineTrainingLog:
        """Offline training stage: trial-and-error on the standard
        environment.  Trained once; reused for every tuning request.

        ``telemetry`` (a :class:`~repro.telemetry.context.RunContext`)
        records spans, metrics, and run provenance for the stage.
        """
        self._record_provenance(telemetry, env)
        trainer = OfflineTrainer(
            self.agent, self.buffer, updates_per_step=updates_per_step,
            telemetry=telemetry,
        )
        self.offline_log = trainer.train(env, iterations, callback=callback)
        return self.offline_log

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        telemetry=None,
        resilience=None,
        session: OnlineSession | None = None,
        start_step: int = 0,
        checkpoint=None,
    ) -> OnlineSession:
        """Online tuning stage for a new request on ``env``.

        ``resilience`` (a :class:`~repro.core.resilience.ResiliencePolicy`)
        enables retry/backoff, the evaluation watchdog, and the safety
        guard.  ``session``/``start_step``/``checkpoint`` resume and
        snapshot crash-recoverable sessions — see
        :meth:`~repro.core.online.OnlineTuner.tune` and
        :class:`~repro.core.persistence.CheckpointManager`.
        """
        self._record_provenance(telemetry, env)
        tuner = OnlineTuner(
            self.agent,
            self.buffer,
            name="DeepCAT" if self.use_twin_q else "DeepCAT-noTwinQ",
            use_twin_q=self.use_twin_q,
            q_threshold=self.q_threshold,
            twinq_noise_sigma=self.twinq_noise_sigma,
            fine_tune_updates=fine_tune_updates,
            exploration_sigma=exploration_sigma,
            rng=self._online_rng,
            telemetry=telemetry,
        )
        return tuner.tune(
            env,
            steps=steps,
            time_budget_s=time_budget_s,
            session=session,
            start_step=start_step,
            resilience=resilience,
            checkpoint=checkpoint,
        )

    def _record_provenance(self, telemetry, env: TuningEnv) -> None:
        """Stamp tuner configuration + cluster spec into the manifest."""
        if telemetry is None or telemetry.manifest is None:
            return
        manifest = telemetry.manifest
        manifest.record_hyper_params(self.hp)
        manifest.record_hyper_params(
            {
                "reward_threshold": self.reward_threshold,
                "beta": self.beta,
                "q_threshold": self.q_threshold,
                "twinq_noise_sigma": self.twinq_noise_sigma,
                "use_rdper": self.use_rdper,
                "use_twin_q": self.use_twin_q,
            }
        )
        manifest.record_cluster(env.cluster)
        if manifest.workload is None:
            manifest.workload = env.runner.workload.code
            manifest.dataset = env.runner.dataset.label
