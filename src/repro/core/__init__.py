"""DeepCAT — the paper's primary contribution.

* :class:`~repro.core.deepcat.DeepCAT`: TD3 + RDPER offline training and
  Twin-Q-optimized online tuning.
* :func:`~repro.core.twinq.twin_q_optimize`: Algorithm 1.
* :class:`~repro.core.offline.OfflineTrainer` /
  :class:`~repro.core.online.OnlineTuner`: the two stages of Figure 1.
* :mod:`~repro.core.persistence`: save/load trained tuners.
"""

from repro.core.deepcat import DeepCAT
from repro.core.offline import OfflineTrainer, OfflineTrainingLog
from repro.core.online import OnlineTuner
from repro.core.persistence import load_tuner, save_tuner
from repro.core.result import OnlineSession, TuningStepRecord
from repro.core.twinq import TwinQOutcome, twin_q_optimize

__all__ = [
    "DeepCAT",
    "OfflineTrainer",
    "OfflineTrainingLog",
    "OnlineTuner",
    "OnlineSession",
    "TuningStepRecord",
    "twin_q_optimize",
    "TwinQOutcome",
    "save_tuner",
    "load_tuner",
]
