"""Resilience policies for the online tuning loop.

Three composable defenses against a noisy, partially-failing cluster
(the chaos modelled by :mod:`repro.faults`):

* :class:`RetryPolicy` — re-evaluate a failed configuration with
  exponential backoff and deterministic seeded jitter.  Backoff delays
  are *charged into the step's tuning cost*, never slept: the simulated
  online loop accounts for the operator's wall-clock without burning it.
* :class:`EvaluationWatchdog` — abort evaluations exceeding
  ``k x default_duration``; the burnt time is charged into the reward
  through the failure semantics of Eq. (1), exactly how
  :mod:`repro.sim.faults` charges OOM retries.
* :class:`SafetyGuard` — after N consecutive failed/aborted steps, fall
  back to the best-known-good configuration and decay the exploration
  noise, bounding how long a destabilized agent can burn money.

:class:`ResiliencePolicy` bundles the three for
:meth:`repro.core.deepcat.DeepCAT.tune_online`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RetryPolicy",
    "WatchdogVerdict",
    "EvaluationWatchdog",
    "SafetyGuard",
    "ResiliencePolicy",
    "sanitize_state",
    "burnt_attempt_seconds",
]


def burnt_attempt_seconds(
    outcome_duration_s: float, backoff_delay_s: float
) -> float:
    """Cost of one burnt (retried) attempt: its duration + backoff delay.

    This is the exact quantity the online loop accumulates into a step's
    ``extra_cost``; the cost ledger charges its ``retry`` account with the
    same float so ledger totals reproduce the session TCT bit-for-bit.
    """
    return float(outcome_duration_s + backoff_delay_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded, bounded jitter.

    The nominal delay before retry ``i`` (0-based) is
    ``min(base_delay_s * multiplier**i, max_delay_s)``; jitter scales
    each delay by a factor in ``[1 - jitter, 1 + jitter]`` drawn from a
    generator seeded with ``seed``, so the same policy always produces
    the same schedule (resumable sessions replay it bit-identically).
    """

    max_attempts: int = 3
    base_delay_s: float = 2.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def nominal_delay(self, retry_index: int) -> float:
        """The jitter-free backoff before retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError("retry_index cannot be negative")
        return float(
            min(
                self.base_delay_s * self.multiplier**retry_index,
                self.max_delay_s,
            )
        )

    def schedule(self) -> tuple[float, ...]:
        """The jittered delays before retries 1..max_attempts-1.

        Pure in the policy's fields: the same (parameters, seed) always
        yields the same tuple.
        """
        n = self.max_attempts - 1
        if n == 0:
            return ()
        rng = np.random.default_rng(self.seed)
        factors = 1.0 + self.jitter * rng.uniform(-1.0, 1.0, size=n)
        return tuple(
            float(self.nominal_delay(i) * factors[i]) for i in range(n)
        )


@dataclass(frozen=True)
class WatchdogVerdict:
    """Outcome of one watchdog inspection."""

    aborted: bool
    #: tuning cost charged for the evaluation (the burnt wall-clock:
    #: capped at the abort budget when aborted, untouched otherwise)
    charged_s: float


class EvaluationWatchdog:
    """Bounds the cost of any single evaluation to ``k x default``.

    A hung or pathologically slow evaluation is killed once it has
    burnt ``k`` times the default-configuration execution time; the
    burnt budget is what the step pays (and the reward sees a failure).
    """

    def __init__(self, k: float = 4.0):
        if k <= 1.0:
            raise ValueError("k must exceed 1 (the default run itself)")
        self.k = float(k)
        self.aborts = 0

    def budget_s(self, default_duration_s: float) -> float:
        return self.k * default_duration_s

    def inspect(
        self, duration_s: float, default_duration_s: float
    ) -> WatchdogVerdict:
        budget = self.budget_s(default_duration_s)
        if duration_s <= budget:
            return WatchdogVerdict(aborted=False, charged_s=float(duration_s))
        self.aborts += 1
        return WatchdogVerdict(aborted=True, charged_s=float(budget))


class SafetyGuard:
    """Falls back to the best-known-good configuration after a bad streak.

    ``record(...)`` is fed every completed step; once
    ``max_consecutive_failures`` failed/aborted steps accumulate, the
    next recommendation is replaced by the best successful action seen
    so far and the exploration noise is decayed (multiplied by
    ``sigma_decay``, floored at ``sigma_min``) so the agent stops
    gambling on a cluster that is punishing exploration.
    """

    def __init__(
        self,
        max_consecutive_failures: int = 3,
        sigma_decay: float = 0.5,
        sigma_min: float = 0.02,
    ):
        if max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        if not 0.0 < sigma_decay <= 1.0:
            raise ValueError("sigma_decay must be in (0, 1]")
        if sigma_min < 0:
            raise ValueError("sigma_min cannot be negative")
        self.max_consecutive_failures = max_consecutive_failures
        self.sigma_decay = sigma_decay
        self.sigma_min = sigma_min
        self.consecutive_failures = 0
        self.fallbacks = 0
        #: cumulative exploration-noise attenuation; part of the guard's
        #: checkpointed state so a resumed session keeps the decayed noise
        self.sigma_scale = 1.0
        self.best_reward = -np.inf
        self.best_action: np.ndarray | None = None

    @property
    def should_fallback(self) -> bool:
        return (
            self.consecutive_failures >= self.max_consecutive_failures
            and self.best_action is not None
        )

    def record(self, success: bool, reward: float, action: np.ndarray) -> None:
        """Fold one completed step into the guard's streak/best state."""
        if success:
            self.consecutive_failures = 0
            if reward > self.best_reward:
                self.best_reward = float(reward)
                self.best_action = np.array(action, dtype=np.float64)
        else:
            self.consecutive_failures += 1

    def trigger_fallback(self) -> np.ndarray:
        """Consume a fallback: reset the streak, decay the noise scale,
        and return the best-known-good action."""
        if self.best_action is None:
            raise RuntimeError("no best-known-good action to fall back to")
        self.fallbacks += 1
        self.consecutive_failures = 0
        self.sigma_scale *= self.sigma_decay
        return self.best_action.copy()

    def effective_sigma(self, sigma: float) -> float:
        """``sigma`` attenuated by the fallbacks seen so far.

        Identity until the first fallback, so a guard that never fires
        leaves the exploration noise untouched.
        """
        if self.sigma_scale >= 1.0:
            return sigma
        return max(sigma * self.sigma_scale, self.sigma_min)


@dataclass
class ResiliencePolicy:
    """The resilience bundle :meth:`DeepCAT.tune_online` accepts.

    Any member may be ``None`` to disable that defense.  The policy is
    stateful (guard streaks, watchdog abort counts) and is included in
    session checkpoints so a resumed run continues mid-streak exactly
    where the killed one stopped.
    """

    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    watchdog: EvaluationWatchdog | None = field(
        default_factory=EvaluationWatchdog
    )
    guard: SafetyGuard | None = field(default_factory=SafetyGuard)

    @classmethod
    def default(cls, seed: int = 0) -> "ResiliencePolicy":
        """The shipped defaults with retry jitter derived from ``seed``."""
        return cls(
            retry=RetryPolicy(seed=seed),
            watchdog=EvaluationWatchdog(),
            guard=SafetyGuard(),
        )

    @property
    def max_attempts(self) -> int:
        return self.retry.max_attempts if self.retry is not None else 1


def sanitize_state(state: np.ndarray, fill: float = 0.0) -> tuple[np.ndarray, int]:
    """Replace non-finite observation entries (metric dropout) by ``fill``.

    Returns the cleaned state and the number of entries repaired; a
    fully-finite state is returned as-is (no copy).
    """
    bad = ~np.isfinite(state)
    n = int(bad.sum())
    if n == 0:
        return state, 0
    clean = state.copy()
    clean[bad] = fill
    return clean, n
