"""Twin-Q Optimizer — Algorithm 1 of the paper (§3.4).

Before paying for a real configuration evaluation, score the recommended
action with the offline-trained twin critics.  If the conservative
estimate ``min(Q1, Q2)`` clears the threshold ``Q_th``, the action is
deemed close-to-optimal and executed; otherwise Gaussian perturbations of
the recommendation are scored until an acceptable action is found.  No
real evaluations happen inside the loop, so sub-optimal recommendations
are optimized at negligible cost.

Implementation notes relative to the paper's pseudo-code:

* the loop is bounded (three escalating rounds of ``max_iterations``
  candidates: local fan, wide fan, uniform) — an unreachable ``Q_th``
  would otherwise never terminate — falling back to the original
  recommendation when nothing clears the threshold;
* candidates perturb the *original* recommendation ("promising ones
  inherit from themselves", §3.4) with gradually growing noise, rather
  than random-walking away from it — a drifting walk tends to terminate
  in regions the critics have never seen, where their Q estimates are
  overconfident;
* the first candidate clearing ``Q_th`` is accepted, exactly as the
  paper's pseudo-code does — taking the argmax of the candidate set
  instead is a max-bias selection over critic noise and measurably
  hurts.  Candidates are scored in vectorized critic passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.td3 import TD3Agent

__all__ = ["TwinQOutcome", "twin_q_optimize", "screening_saving"]


def screening_saving(reward_fn, original_q: float, final_q: float) -> float:
    """Estimated evaluation seconds avoided by Twin-Q screening one step.

    Inverts the paper's Eq.(1) duration model: a predicted reward ``q``
    corresponds to an execution duration ``perf_from_reward(q) =
    perf_e * (1 - q)``, so replacing the actor's raw recommendation
    (``original_q``) with the screened candidate (``final_q``) avoids an
    estimated ``perf_e * (final_q - original_q)`` seconds of evaluation.
    Clamped at zero — screening never *adds* estimated cost — and zero
    when the reward function has no duration model.
    """
    perf = getattr(reward_fn, "perf_from_reward", None)
    if perf is None:
        return 0.0
    return max(0.0, float(perf(original_q) - perf(final_q)))


@dataclass(frozen=True)
class TwinQOutcome:
    """Result of one Twin-Q optimization."""

    action: np.ndarray  # the action to actually evaluate
    q_value: float  # min(Q1, Q2) of that action
    iterations: int  # candidates scored (0 = accepted as-is)
    accepted: bool  # True if some candidate cleared Q_th
    original_q: float  # min(Q1, Q2) of the original recommendation


def twin_q_optimize(
    agent: TD3Agent,
    state: np.ndarray,
    action: np.ndarray,
    q_threshold: float,
    noise_sigma: float = 0.1,
    rng: np.random.Generator | None = None,
    max_iterations: int = 64,
    telemetry=None,
) -> TwinQOutcome:
    """Run Algorithm 1 for one recommended action.

    Parameters
    ----------
    agent:
        The offline-trained TD3 agent whose twin critics estimate cost.
    state:
        Current system state (load averages).
    action:
        The actor's recommendation, in [0,1]^d.
    q_threshold:
        ``Q_th``: larger drives more exploration around the sub-optimal
        space, smaller exploits configurations already found (§5.4.2).
    noise_sigma:
        σ_ε of the Gaussian perturbation (grows mildly across the
        candidate fan so late candidates search wider).
    max_iterations:
        Candidate budget per escalation round; on exhaustion of all
        rounds the original recommendation is executed
        (``accepted=False``).
    telemetry:
        Optional :class:`~repro.telemetry.context.RunContext`; records
        the span ``twinq.optimize`` plus the iteration/acceptance
        counters behind the paper's Figures 3 and 5.
    """
    if noise_sigma <= 0:
        raise ValueError("noise_sigma must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    if telemetry is None:
        from repro.telemetry.context import NULL_CONTEXT

        telemetry = NULL_CONTEXT

    with telemetry.phase("twinq.optimize"), \
            telemetry.span("twinq.optimize") as span:
        outcome = _optimize(
            agent, state, action, q_threshold, noise_sigma, rng,
            max_iterations,
        )
        span.set_attr("iterations", outcome.iterations)
        span.set_attr("accepted", outcome.accepted)
    telemetry.count(
        "twinq.invocations_total",
        help="recommendations screened by the Twin-Q Optimizer",
    )
    telemetry.count(
        "twinq.iterations_total",
        outcome.iterations,
        help="candidate actions scored across all screenings",
    )
    if outcome.iterations == 0:
        telemetry.count(
            "twinq.passthrough_total",
            help="recommendations accepted without perturbation",
        )
    elif outcome.accepted:
        telemetry.count(
            "twinq.accepted_total",
            help="perturbed candidates that cleared Q_th",
        )
    else:
        telemetry.count(
            "twinq.rejected_total",
            help="screenings that fell back to the original action",
        )
    telemetry.observe(
        "twinq.q_improvement",
        outcome.q_value - outcome.original_q,
        help="min(Q1,Q2) gain of the executed action over the original",
    )
    return outcome


def _optimize(
    agent: TD3Agent,
    state: np.ndarray,
    action: np.ndarray,
    q_threshold: float,
    noise_sigma: float,
    rng: np.random.Generator,
    max_iterations: int,
) -> TwinQOutcome:
    """The uninstrumented Algorithm 1 body."""

    original = np.clip(np.asarray(action, dtype=np.float64), 0.0, 1.0)
    original_q = agent.min_q(state, original)
    if original_q >= q_threshold:
        return TwinQOutcome(original, original_q, 0, True, original_q)

    def score(candidates: np.ndarray) -> np.ndarray:
        if hasattr(agent, "twin_q_batch"):
            return agent.twin_q_batch(state, candidates)
        # Fallback for agents exposing only a scalar critic query (e.g.
        # a single-critic ablation): score candidates one at a time.
        return np.array([agent.min_q(state, c) for c in candidates])

    # Escalating search rounds, mirroring the paper's "repeat until a
    # close-to-optimal action is recommended": a local fan around the
    # recommendation first, then a wide fan, then uniform candidates —
    # when the proposal sits in a deeply bad basin (strongly negative Q)
    # no amount of local noise escapes it, and the critics are perfectly
    # able to endorse an action elsewhere in the cube.
    n = max_iterations
    local_sigmas = noise_sigma * (1.0 + 2.0 * np.arange(n) / max(n - 1, 1))
    rounds = (
        np.clip(
            original[None, :]
            + rng.normal(0.0, 1.0, (n, original.size))
            * local_sigmas[:, None],
            0.0,
            1.0,
        ),
        np.clip(
            original[None, :]
            + rng.normal(0.0, 4.0 * noise_sigma, (n, original.size)),
            0.0,
            1.0,
        ),
        rng.uniform(0.0, 1.0, (n, original.size)),
    )
    scored = 0
    for candidates in rounds:
        qs = score(candidates)
        above = np.flatnonzero(qs >= q_threshold)
        if above.size:
            # Accept the FIRST candidate above the threshold, exactly as
            # Algorithm 1 does.  Taking the argmax instead is a max-bias
            # selection over critic noise: the highest scorer among many
            # random candidates is systematically overestimated, and we
            # measured it costing ~25% more evaluation time than
            # first-above acceptance.
            first = int(above[0])
            scored += first + 1
            return TwinQOutcome(
                candidates[first], float(qs[first]), scored, True,
                original_q,
            )
        scored += len(candidates)

    # Nothing anywhere clears Q_th: fall back to the ORIGINAL
    # recommendation.  Picking the argmax-Q candidate here would be a
    # max-bias selection over critic noise — the highest scorer among
    # many random candidates is precisely where min(Q1,Q2) is most
    # overestimated, and executing it occasionally costs several clean
    # runs.  The actor's own output is the safer unvetted choice.
    return TwinQOutcome(original, original_q, scored, False, original_q)
