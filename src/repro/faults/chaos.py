"""Process-level chaos: seeded worker SIGKILLs for the experiment engine.

:mod:`repro.faults` (PR 3) injects *evaluation-level* chaos — stragglers,
lost executors, metric dropout — inside a running session.  This module
attacks one level down: it kills the **worker process itself** mid-task,
producing the same ``BrokenProcessPool`` an OOM-kill or an operator's
stray ``kill -9`` causes in production.  The engine's task supervisor
must absorb it: rebuild the pool, re-dispatch the incomplete tasks, and
(because every task owns an explicit seed plan) recover results that are
bit-identical to a clean run.

The schedule is a pure function of ``(seed, task key, attempt)`` — no
global state, no clock — so a chaos soak is exactly reproducible and the
harness pickles cleanly into worker processes:

* :meth:`WorkerChaos.kills_for` hashes the task's canonical key with the
  chaos seed into a uniform draw; tasks under ``kill_rate`` get
  ``max_kills_per_task`` scheduled kills, the rest get none.
* :meth:`WorkerChaos.should_kill` answers "die now?" for a given attempt
  number: attempt 1 of a doomed task dies, attempt
  ``max_kills_per_task + 1`` survives — so a supervisor with enough
  retries always finishes the grid.

Used by ``tests/test_engine_chaos.py`` (the ``-m faults`` soak) and the
CI ``chaos-engine-smoke`` job (``tools/chaos_engine_smoke.py``).
"""

from __future__ import annotations

import hashlib
import os
import signal
from dataclasses import dataclass

__all__ = ["WorkerChaos"]


@dataclass(frozen=True)
class WorkerChaos:
    """Deterministic SIGKILL schedule for engine worker processes.

    Parameters
    ----------
    seed:
        Chaos stream identity.  Different seeds doom different subsets
        of a grid; the same seed always dooms the same tasks.
    kill_rate:
        Fraction of tasks (by hash measure, in ``[0, 1]``) whose workers
        are killed.  ``1.0`` kills every task's first attempt.
    max_kills_per_task:
        How many consecutive attempts of a doomed task die before the
        harness lets one through.  Keep it ``<= task_retries`` or the
        task is guaranteed to exhaust its budget and be quarantined.
    """

    seed: int = 0
    kill_rate: float = 0.0
    max_kills_per_task: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_rate <= 1.0:
            raise ValueError(
                f"kill_rate must be in [0, 1], got {self.kill_rate}"
            )
        if self.max_kills_per_task < 0:
            raise ValueError("max_kills_per_task must be >= 0")

    def kills_for(self, task_key: str) -> int:
        """Scheduled kill count for the task with this canonical key."""
        digest = hashlib.sha256(
            f"{self.seed}\n{task_key}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return self.max_kills_per_task if draw < self.kill_rate else 0

    def should_kill(self, task_key: str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) dies at task
        start.  Pure: re-asking for the same ``(key, attempt)`` always
        answers the same, so a resumed supervisor sees the same chaos."""
        return attempt <= self.kills_for(task_key)

    @staticmethod
    def kill_now() -> None:  # pragma: no cover - the caller dies
        """SIGKILL the calling process — no cleanup, no atexit, exactly
        what the OOM killer does."""
        os.kill(os.getpid(), signal.SIGKILL)
