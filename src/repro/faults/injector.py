"""The seeded fault injector applied to every simulated evaluation.

One injector owns one :class:`numpy.random.Generator` stream, spawned by
:class:`~repro.envs.tuning_env.TuningEnv` from the environment seed, so a
fault sequence is a pure function of ``(seed, profile)`` — the property
the ``-m determinism`` suite pins (same seed + same profile => the same
faults at ``--jobs 1`` and ``--jobs 4``).

Faults compose in a fixed order per evaluation: crash (terminal,
suppresses the rest), then hang, executor loss, and straggler (all
multiplicative on the duration).  Metric dropout applies to the
*observation*, not the run, and is drawn separately by the environment.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faults.profile import FaultProfile, get_profile
from repro.sim.result import ExecutionResult

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stochastic chaos source for one environment.

    Parameters
    ----------
    profile:
        A :class:`~repro.faults.profile.FaultProfile` or preset name.
    rng:
        The injector's private generator.  A ``none`` profile never
        draws from it, keeping fault-free runs bit-identical to builds
        without the subsystem.
    """

    def __init__(self, profile: FaultProfile | str, rng: np.random.Generator):
        self.profile = get_profile(profile)
        self._rng = rng
        #: cumulative injections by kind (mirrors the telemetry counter)
        self.injected: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return not self.profile.is_null

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -------------------------------------------------------- evaluations

    def perturb_result(
        self, result: ExecutionResult
    ) -> tuple[ExecutionResult, tuple[str, ...]]:
        """Apply evaluation-level faults to a simulator result.

        Returns the (possibly replaced) result and the kinds injected.
        """
        p = self.profile
        if p.is_null:
            return result, ()
        rng = self._rng
        faults: list[str] = []
        duration = float(result.duration_s)

        if p.crash_rate and rng.random() < p.crash_rate:
            # The evaluation dies early: a fraction of the clean run is
            # burnt, nothing is learnt about the configuration itself.
            burnt = duration * rng.uniform(0.05, 0.30)
            self._note("crash")
            return (
                dataclasses.replace(
                    result,
                    duration_s=float(burnt),
                    success=False,
                    failure_reason="injected: evaluation crash",
                    stages=(),
                    injected_faults=("crash",),
                ),
                ("crash",),
            )

        if p.hang_rate and rng.random() < p.hang_rate:
            # A hung run eventually completes, but only after burning
            # hang_factor x the clean duration — the cost an
            # EvaluationWatchdog exists to bound.
            duration *= p.hang_factor
            faults.append("hang")
            self._note("hang")
        if p.executor_loss_rate and rng.random() < p.executor_loss_rate:
            duration *= rng.uniform(1.0, p.executor_loss_slowdown)
            faults.append("executor-loss")
            self._note("executor-loss")
        if p.straggler_rate and rng.random() < p.straggler_rate:
            duration *= rng.uniform(1.0, p.straggler_factor)
            faults.append("straggler")
            self._note("straggler")

        if not faults:
            return result, ()
        return (
            dataclasses.replace(
                result,
                duration_s=float(duration),
                injected_faults=tuple(faults),
            ),
            tuple(faults),
        )

    # ------------------------------------------------------- observations

    def corrupt_state(self, state: np.ndarray) -> tuple[np.ndarray, int]:
        """Drop state metrics to NaN per ``metric_dropout_rate``.

        Returns the (possibly corrupted copy of the) observation and the
        number of dropped elements; with a zero rate the input array is
        returned untouched and no randomness is consumed.
        """
        rate = self.profile.metric_dropout_rate
        if rate == 0.0:
            return state, 0
        mask = self._rng.random(state.shape) < rate
        n = int(mask.sum())
        if n == 0:
            return state, 0
        corrupted = state.copy()
        corrupted[mask] = np.nan
        self.injected["metric-dropout"] = (
            self.injected.get("metric-dropout", 0) + n
        )
        return corrupted, n
