"""Stochastic fault injection for chaos-hardening the online loop.

See :mod:`repro.faults.profile` for the named chaos levels and
:mod:`repro.faults.injector` for how they are applied; the counterpart
resilience policies live in :mod:`repro.core.resilience`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.profile import PROFILES, FaultProfile, get_profile

__all__ = ["FaultInjector", "FaultProfile", "PROFILES", "get_profile"]
