"""Stochastic fault injection for chaos-hardening the online loop.

See :mod:`repro.faults.profile` for the named chaos levels,
:mod:`repro.faults.injector` for how they are applied inside a session,
and :mod:`repro.faults.chaos` for the process-level worker-kill harness
used against the experiment engine; the counterpart resilience policies
live in :mod:`repro.core.resilience`.
"""

from repro.faults.chaos import WorkerChaos
from repro.faults.injector import FaultInjector
from repro.faults.profile import PROFILES, FaultProfile, get_profile

__all__ = [
    "FaultInjector",
    "FaultProfile",
    "PROFILES",
    "WorkerChaos",
    "get_profile",
]
