"""Fault profiles — named rate bundles for stochastic chaos injection.

The deterministic failure semantics in :mod:`repro.sim.faults` model what
a *configuration* does to a run (OOM retries, YARN rejections).  A fault
profile models what the *cluster* does to a run regardless of its
configuration: transient stragglers, container loss, hung evaluations,
crashed evaluations, and metric-collection dropout.  Production online
tuners must keep making progress under all of these (Tuneful,
arXiv:2001.08002; Li et al., arXiv:2309.01901); the resilience layer in
:mod:`repro.core.resilience` is tested against exactly these profiles.

All rates are per-evaluation probabilities; ``none`` (the default
everywhere) injects nothing and draws nothing from the RNG, so existing
seeded results are bit-identical with or without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["FaultProfile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class FaultProfile:
    """Per-evaluation fault rates for one chaos level.

    Parameters
    ----------
    straggler_rate, straggler_factor:
        Probability of a transient node straggler; a straggling
        evaluation's duration is scaled by a factor drawn uniformly from
        ``[1, straggler_factor]``.
    executor_loss_rate, executor_loss_slowdown:
        Probability of losing an executor/container mid-evaluation.
        Spark recomputes the lost tasks, inflating the duration by up to
        ``executor_loss_slowdown`` (uniform severity); the run still
        completes.
    crash_rate:
        Probability the evaluation crashes outright, burning a fraction
        of its clean duration before failing.
    hang_rate, hang_factor:
        Probability the evaluation hangs (stuck shuffle fetch, zombie
        AM).  Without a watchdog the operator pays ``hang_factor`` times
        the clean duration before the run limps to completion; an
        :class:`~repro.core.resilience.EvaluationWatchdog` bounds that
        cost.
    metric_dropout_rate:
        Per-element probability that a state metric fails to collect,
        yielding NaN entries in the observation.
    """

    name: str
    straggler_rate: float = 0.0
    straggler_factor: float = 1.0
    executor_loss_rate: float = 0.0
    executor_loss_slowdown: float = 1.0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_factor: float = 25.0
    metric_dropout_rate: float = 0.0

    def __post_init__(self):
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{f.name} must be in [0,1], got {value}"
                    )
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.executor_loss_slowdown < 1.0:
            raise ValueError("executor_loss_slowdown must be >= 1")
        if self.hang_factor < 1.0:
            raise ValueError("hang_factor must be >= 1")

    @property
    def is_null(self) -> bool:
        """True when the profile can never inject anything."""
        return (
            self.straggler_rate == 0.0
            and self.executor_loss_rate == 0.0
            and self.crash_rate == 0.0
            and self.hang_rate == 0.0
            and self.metric_dropout_rate == 0.0
        )


#: the named presets accepted by ``--fault-profile`` and ``make_env``
PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "flaky": FaultProfile(
        name="flaky",
        straggler_rate=0.15,
        straggler_factor=2.0,
        executor_loss_rate=0.05,
        executor_loss_slowdown=1.6,
        crash_rate=0.05,
        hang_rate=0.02,
        metric_dropout_rate=0.05,
    ),
    "degraded": FaultProfile(
        name="degraded",
        straggler_rate=0.30,
        straggler_factor=3.0,
        executor_loss_rate=0.12,
        executor_loss_slowdown=2.0,
        crash_rate=0.10,
        hang_rate=0.05,
        metric_dropout_rate=0.15,
    ),
    "hostile": FaultProfile(
        name="hostile",
        straggler_rate=0.45,
        straggler_factor=4.0,
        executor_loss_rate=0.20,
        executor_loss_slowdown=2.5,
        crash_rate=0.20,
        hang_rate=0.12,
        metric_dropout_rate=0.30,
    ),
}


def get_profile(profile: str | FaultProfile | None) -> FaultProfile:
    """Coerce a preset name (or ``None``) into a :class:`FaultProfile`."""
    if profile is None:
        return PROFILES["none"]
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {profile!r}; have {sorted(PROFILES)}"
        ) from None
