"""Transition records and the batched storage backing every buffer."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Transition", "ReplayBatch", "RingStorage"]


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s') interaction.

    Configuration tuning has no terminal states (episodes are bounded by
    step budgets, not by the MDP), so there is no ``done`` flag; the
    bootstrap always continues.
    """

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray


@dataclass(frozen=True)
class ReplayBatch:
    """A sampled minibatch in structure-of-arrays layout.

    Vectorized over the batch dimension so agents do a single forward /
    backward pass per update (see the hpc guides: no per-sample loops).
    """

    states: np.ndarray  # (m, state_dim)
    actions: np.ndarray  # (m, action_dim)
    rewards: np.ndarray  # (m, 1)
    next_states: np.ndarray  # (m, state_dim)
    #: indices into the owning buffer (for PER priority updates)
    indices: np.ndarray | None = None
    #: importance-sampling weights (PER); None for unweighted buffers
    weights: np.ndarray | None = None

    def __len__(self) -> int:
        return self.states.shape[0]


class RingStorage:
    """Fixed-capacity structure-of-arrays transition store.

    Pre-allocates numpy arrays and overwrites the oldest entry when full —
    no per-push allocation, O(1) insertion, vectorized gather on sample.
    """

    def __init__(self, capacity: int, state_dim: int, action_dim: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state/action dims must be positive")
        self.capacity = capacity
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, action_dim))
        self._rewards = np.zeros((capacity, 1))
        self._next_states = np.zeros((capacity, state_dim))
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, t: Transition) -> int:
        """Insert ``t``; return the slot index it landed in."""
        if t.state.shape != (self.state_dim,):
            raise ValueError(
                f"state shape {t.state.shape} != ({self.state_dim},)"
            )
        if t.action.shape != (self.action_dim,):
            raise ValueError(
                f"action shape {t.action.shape} != ({self.action_dim},)"
            )
        idx = self._next
        self._states[idx] = t.state
        self._actions[idx] = t.action
        self._rewards[idx, 0] = t.reward
        self._next_states[idx] = t.next_state
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return idx

    def _check_indices(self, idx: np.ndarray) -> None:
        # Single vectorized validity pass (one mask, no min/max re-scans).
        if idx.size and np.any((idx < 0) | (idx >= self._size)):
            raise IndexError("replay index out of range")

    def gather(self, indices: np.ndarray) -> ReplayBatch:
        """Vectorized fetch of the given slots."""
        idx = np.asarray(indices, dtype=np.intp)
        self._check_indices(idx)
        return ReplayBatch(
            states=self._states[idx],
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_states=self._next_states[idx],
            indices=idx,
        )

    def gather_into(self, indices: np.ndarray, batch: ReplayBatch, offset: int) -> None:
        """Fetch the given slots into ``batch`` rows starting at ``offset``.

        Allocation-free variant of :meth:`gather` for callers that own a
        preallocated :class:`ReplayBatch` (see RDPER's batched sample).
        """
        idx = np.asarray(indices, dtype=np.intp)
        self._check_indices(idx)
        self.gather_into_trusted(idx, batch, offset)

    def gather_into_trusted(
        self, idx: np.ndarray, batch: ReplayBatch, offset: int
    ) -> None:
        """:meth:`gather_into` minus the occupancy check, for callers
        whose indices are in-range by construction (RDPER draws them as
        ``rng.integers(0, len(pool))``).  The ``ndarray.take`` method
        skips numpy's dispatch wrapper and still hard-errors on indices
        past the array's capacity (``mode='raise'``)."""
        end = offset + idx.size
        self._states.take(idx, axis=0, out=batch.states[offset:end])
        self._actions.take(idx, axis=0, out=batch.actions[offset:end])
        self._rewards.take(idx, axis=0, out=batch.rewards[offset:end])
        self._next_states.take(idx, axis=0, out=batch.next_states[offset:end])

    def reward_at(self, index: int) -> float:
        if not 0 <= index < self._size:
            raise IndexError("index out of range")
        return float(self._rewards[index, 0])
