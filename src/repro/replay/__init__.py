"""Experience replay buffers.

Three mechanisms, matching the paper's comparison surface:

* :class:`UniformReplayBuffer` — the conventional random replay.
* :class:`PrioritizedReplayBuffer` — TD-error PER (Schaul et al. 2015),
  the mechanism CDBTune-style tuners use.
* :class:`RewardDrivenReplayBuffer` — the paper's RDPER (§3.3): two
  pools split on a reward threshold ``R_th``; each batch draws a fixed
  fraction β from the high-reward pool.
"""

from repro.replay.base import ReplayBatch, Transition
from repro.replay.per import PrioritizedReplayBuffer
from repro.replay.rdper import RewardDrivenReplayBuffer
from repro.replay.sumtree import SumTree
from repro.replay.uniform import UniformReplayBuffer

__all__ = [
    "Transition",
    "ReplayBatch",
    "UniformReplayBuffer",
    "PrioritizedReplayBuffer",
    "RewardDrivenReplayBuffer",
    "SumTree",
]
