"""TD-error prioritized experience replay (Schaul et al. 2015).

This is the replay mechanism the paper attributes to CDBTune-style
tuners: transitions are sampled proportionally to ``(|TD error| + ε)^α``
with importance-sampling weights annealed by β_IS.  DeepCAT's RDPER
replaces this with a reward-threshold scheme (see ``rdper.py``).
"""

from __future__ import annotations

import numpy as np

from repro.replay.base import ReplayBatch, RingStorage, Transition
from repro.replay.sumtree import SumTree

__all__ = ["PrioritizedReplayBuffer"]


class PrioritizedReplayBuffer:
    """Proportional-variant PER over a sum-tree."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        alpha: float = 0.6,
        beta_is: float = 0.4,
        beta_is_increment: float = 1e-4,
        epsilon: float = 1e-3,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0,1], got {alpha}")
        if not 0.0 <= beta_is <= 1.0:
            raise ValueError(f"beta_is must be in [0,1], got {beta_is}")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self._storage = RingStorage(capacity, state_dim, action_dim)
        self._tree = SumTree(capacity)
        self._rng = rng
        self.alpha = alpha
        self.beta_is = beta_is
        self.beta_is_increment = beta_is_increment
        self.epsilon = epsilon

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def capacity(self) -> int:
        return self._storage.capacity

    def push(self, transition: Transition) -> None:
        """Insert with max priority so new transitions are seen at least once."""
        idx = self._storage.push(transition)
        prio = self._tree.max_priority()
        if prio <= 0.0:
            prio = 1.0
        self._tree.update(idx, prio)

    def sample(self, batch_size: int) -> ReplayBatch:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = len(self)
        if n == 0:
            raise ValueError("cannot sample from an empty buffer")
        total = self._tree.total
        # Stratified sampling over the priority mass.
        bounds = np.linspace(0.0, total, batch_size + 1)
        targets = self._rng.uniform(bounds[:-1], bounds[1:])
        indices = np.array(
            [self._tree.find_prefix(v) for v in targets], dtype=np.intp
        )
        indices = np.minimum(indices, n - 1)

        # Importance-sampling weights, normalized by the max weight.
        probs = np.array([self._tree[i] for i in indices]) / max(total, 1e-12)
        probs = np.maximum(probs, 1e-12)
        weights = (n * probs) ** (-self.beta_is)
        weights /= weights.max()
        self.beta_is = min(1.0, self.beta_is + self.beta_is_increment)

        batch = self._storage.gather(indices)
        return ReplayBatch(
            states=batch.states,
            actions=batch.actions,
            rewards=batch.rewards,
            next_states=batch.next_states,
            indices=indices,
            weights=weights[:, None],
        )

    def update_priorities(
        self, indices: np.ndarray, td_errors: np.ndarray
    ) -> None:
        """Refresh priorities from new TD errors after a learning step."""
        td = np.abs(np.asarray(td_errors, dtype=np.float64)).ravel()
        idx = np.asarray(indices, dtype=np.intp).ravel()
        if td.shape != idx.shape:
            raise ValueError("indices and td_errors must align")
        for i, e in zip(idx, td):
            self._tree.update(int(i), float((e + self.epsilon) ** self.alpha))

    def can_sample(self, batch_size: int) -> bool:
        return len(self) >= batch_size
