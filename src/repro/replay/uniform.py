"""Conventional uniform-random experience replay."""

from __future__ import annotations

import numpy as np

from repro.replay.base import ReplayBatch, RingStorage, Transition

__all__ = ["UniformReplayBuffer"]


class UniformReplayBuffer:
    """The off-policy default: sample transitions uniformly at random."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
    ):
        self._storage = RingStorage(capacity, state_dim, action_dim)
        self._rng = rng

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def capacity(self) -> int:
        return self._storage.capacity

    def push(self, transition: Transition) -> None:
        self._storage.push(transition)

    def sample(self, batch_size: int) -> ReplayBatch:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if len(self) == 0:
            raise ValueError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, len(self), size=batch_size)
        return self._storage.gather(idx)

    def can_sample(self, batch_size: int) -> bool:
        return len(self) >= batch_size
