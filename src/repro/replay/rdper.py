"""RDPER — the paper's reward-driven prioritized experience replay (§3.3).

Transitions with reward ≥ ``R_th`` go to the high-reward pool ``P_high``,
the rest to ``P_low``.  Each batch of size m draws ``β·m`` transitions
from ``P_high`` and ``(1-β)·m`` from ``P_low``, guaranteeing the ratio of
the rare but valuable high-reward experiences in every update — this is
the paper's replacement for TD-error PER, motivated by the fact that the
deterministic policy gradient (Eq. 4) extracts the most improvement from
transitions with large Q, i.e. large reward.

β = 0.6 is the paper's tuned value (Figure 11); ``R_th`` splits
"close-to-optimal" from "sub-optimal" rewards.
"""

from __future__ import annotations

import numpy as np

from repro.replay.base import ReplayBatch, RingStorage, Transition

__all__ = ["RewardDrivenReplayBuffer"]


class RewardDrivenReplayBuffer:
    """Dual-pool reward-threshold replay."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        reward_threshold: float = 0.3,
        beta: float = 0.6,
    ):
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0,1], got {beta}")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        # Split capacity: high-reward transitions are rare, so a smaller
        # dedicated pool suffices and keeps them resident much longer than
        # a shared ring would.
        high_cap = max(1, capacity // 4)
        low_cap = max(1, capacity - high_cap)
        self._high = RingStorage(high_cap, state_dim, action_dim)
        self._low = RingStorage(low_cap, state_dim, action_dim)
        self._rng = rng
        self.reward_threshold = float(reward_threshold)
        self.beta = float(beta)
        # Preallocated sample workspaces keyed by batch size: both pools
        # gather straight into one ReplayBatch — no per-sample
        # concatenate.  A batch stays valid until the next sample() of
        # the same size (every in-repo caller consumes it immediately).
        self._batches: dict[int, ReplayBatch] = {}
        # Pushes since P_high last accepted a transition — the
        # staleness signal the diagnostics pillar watches.
        self._pushes_since_high = 0
        from repro.telemetry.context import NULL_CONTEXT

        self._telemetry = NULL_CONTEXT

    def set_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.telemetry.context.RunContext`.

        The buffer then publishes its pool sizes as gauges and the
        realized per-batch high-reward fraction (the paper's β) as a
        histogram — Figure 11's signal, live.
        """
        from repro.telemetry.context import NULL_CONTEXT

        self._telemetry = telemetry if telemetry is not None else NULL_CONTEXT

    def __len__(self) -> int:
        return len(self._high) + len(self._low)

    @property
    def high_size(self) -> int:
        return len(self._high)

    @property
    def low_size(self) -> int:
        return len(self._low)

    @property
    def capacity(self) -> int:
        return self._high.capacity + self._low.capacity

    def push(self, transition: Transition) -> None:
        """Route the transition by its reward against ``R_th``."""
        with self._telemetry.phase("replay.push"):
            self._push(transition)

    def _push(self, transition: Transition) -> None:
        if transition.reward >= self.reward_threshold:
            self._high.push(transition)
            self._pushes_since_high = 0
        else:
            self._low.push(transition)
            self._pushes_since_high += 1
        t = self._telemetry
        t.gauge_set(
            "replay.rdper_high_size", len(self._high),
            help="P_high occupancy",
        )
        t.gauge_set(
            "replay.rdper_low_size", len(self._low),
            help="P_low occupancy",
        )

    def sample(self, batch_size: int) -> ReplayBatch:
        """Draw β·m from P_high and (1−β)·m from P_low.

        When one pool cannot supply its share (early training), the other
        pool covers the deficit, so the batch size is always honoured.
        """
        with self._telemetry.phase("replay.sample"):
            return self._sample(batch_size)

    def _batch_workspace(self, batch_size: int) -> ReplayBatch:
        batch = self._batches.get(batch_size)
        if batch is None:
            batch = self._batches[batch_size] = ReplayBatch(
                states=np.empty((batch_size, self._high.state_dim)),
                actions=np.empty((batch_size, self._high.action_dim)),
                rewards=np.empty((batch_size, 1)),
                next_states=np.empty((batch_size, self._high.state_dim)),
            )
        return batch

    def _sample(self, batch_size: int) -> ReplayBatch:
        # All validation happens before any telemetry is emitted, so an
        # impossible sample never records a realized-beta observation.
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if len(self) == 0:
            raise ValueError("cannot sample from an empty buffer")
        n_high = int(round(self.beta * batch_size))
        n_low = batch_size - n_high
        if len(self._high) == 0:
            n_high, n_low = 0, batch_size
        elif len(self._low) == 0:
            n_high, n_low = batch_size, 0
        self._telemetry.observe(
            "replay.rdper_realized_beta",
            n_high / batch_size,
            help="actual high-reward fraction of each sampled batch",
        )
        self._telemetry.diagnostics.observe_rdper(
            realized_beta=n_high / batch_size,
            beta=self.beta,
            staleness=self._pushes_since_high,
            high_size=len(self._high),
            low_size=len(self._low),
        )

        batch = self._batch_workspace(batch_size)
        if n_high:
            idx = self._rng.integers(0, len(self._high), size=n_high)
            self._high.gather_into_trusted(idx, batch, 0)
        if n_low:
            idx = self._rng.integers(0, len(self._low), size=n_low)
            self._low.gather_into_trusted(idx, batch, n_high)
        return batch

    def can_sample(self, batch_size: int) -> bool:
        return len(self) >= batch_size
