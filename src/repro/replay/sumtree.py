"""A sum-tree for O(log n) proportional sampling (PER's data structure)."""

from __future__ import annotations

import numpy as np

__all__ = ["SumTree"]


class SumTree:
    """Complete binary tree whose leaves hold priorities.

    Internal nodes store the sum of their children, so prefix-sum lookup
    (sampling proportional to priority) and point updates are O(log n).
    Implemented over a flat numpy array (standard heap indexing).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._tree = np.zeros(2 * capacity - 1)

    @property
    def total(self) -> float:
        """Sum of all priorities."""
        return float(self._tree[0])

    def __getitem__(self, index: int) -> float:
        if not 0 <= index < self.capacity:
            raise IndexError("leaf index out of range")
        return float(self._tree[index + self.capacity - 1])

    def update(self, index: int, priority: float) -> None:
        """Set leaf ``index`` to ``priority`` and repair ancestors."""
        if not 0 <= index < self.capacity:
            raise IndexError("leaf index out of range")
        if priority < 0:
            raise ValueError(f"priority cannot be negative, got {priority}")
        node = index + self.capacity - 1
        delta = priority - self._tree[node]
        self._tree[node] = priority
        while node > 0:
            node = (node - 1) // 2
            self._tree[node] += delta

    def find_prefix(self, value: float) -> int:
        """Return the leaf where the running prefix-sum reaches ``value``.

        ``value`` must lie in [0, total]; used for proportional sampling.
        """
        if not 0.0 <= value <= self.total + 1e-9:
            raise ValueError(f"value {value} outside [0, {self.total}]")
        node = 0
        while node < self.capacity - 1:  # until we hit a leaf
            left = 2 * node + 1
            left_sum = self._tree[left]
            right_sum = self._tree[2 * node + 2]
            # Descend right when the left subtree has no mass (so zero-
            # priority leaves are never returned) or the prefix target
            # lies beyond it.
            if right_sum <= 0.0 or (left_sum > 0.0 and value <= left_sum):
                node = left
            else:
                value -= left_sum
                node = 2 * node + 2
        return node - (self.capacity - 1)

    def max_priority(self) -> float:
        """Largest leaf priority (0 for an empty tree)."""
        return float(self._tree[self.capacity - 1 :].max())

    def min_priority(self, size: int) -> float:
        """Smallest priority among the first ``size`` occupied leaves."""
        if size <= 0:
            raise ValueError("size must be positive")
        leaves = self._tree[self.capacity - 1 : self.capacity - 1 + size]
        return float(leaves.min())
