"""Span-based tracing: hierarchical timing trees for tuning runs.

``Tracer.span("offline.update", iteration=3)`` is a context manager; on
exit the span records its wall-clock duration and attaches itself under
whatever span was open on the same thread, producing a tree per
top-level operation.  Exports:

* :meth:`Tracer.to_jsonl` — one JSON object per finished span with
  explicit ``id``/``parent`` links (loadable via :func:`load_trace`);
* :meth:`Tracer.to_chrome_trace` — the Chrome ``trace_event`` format
  (open in ``chrome://tracing`` or Perfetto);
* :meth:`Tracer.totals` — per-name aggregate (count, total seconds).

:class:`NullTracer` is the disabled fast path: ``span()`` hands back a
shared reusable no-op context manager, so instrumentation costs one
method call when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "render_span_tree",
]


class Span:
    """One timed operation; nests under a parent span on the same thread."""

    __slots__ = (
        "name", "attrs", "children", "start_wall", "duration_s",
        "ref", "pid", "_start_perf", "_tracer", "_thread_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_wall = 0.0
        self.duration_s = 0.0
        self.ref = ""
        self.pid = 0
        self._start_perf = 0.0
        self._thread_id = 0

    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite an attribute while the span is open."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._thread_id = threading.get_ident()
        self.pid = os.getpid()
        if not self.ref:
            self.ref = self._tracer._make_ref()
        self._tracer._push(self)
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    # ------------------------------------------------------------- views

    def total_seconds(self, name: str) -> float:
        """Sum of durations of descendant spans named ``name``."""
        total = self.duration_s if self.name == name else 0.0
        if self.name != name:  # nested same-name spans would double-count
            total += sum(c.total_seconds(name) for c in self.children)
        return total

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start_wall,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Collects span trees; thread-safe, one open-span stack per thread.

    ``trace_id`` is a propagatable trace context: every span exported by
    this tracer carries it, so traces recorded in different processes can
    be stitched back into one causal timeline.  A child tracer (e.g. an
    engine worker) is built with the parent's ``trace_id`` plus a
    ``parent_ref`` — the ``ref`` of the parent-side span its roots hang
    under.  Refs are ``"<pid:hex>.<n>"`` strings, unique per process.
    """

    def __init__(
        self, trace_id: str | None = None, parent_ref: str | None = None
    ):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex
        self.parent_ref = parent_ref
        self._ref_counter = 0

    # ------------------------------------------------------------ recording

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span as a context manager."""
        return Span(self, name, attrs)

    def _make_ref(self) -> str:
        with self._lock:
            n = self._ref_counter
            self._ref_counter += 1
        return f"{os.getpid():x}.{n}"

    def record_span(
        self,
        name: str,
        *,
        start_wall: float,
        duration_s: float,
        parent: Span | None = None,
        ref: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured span (no timing of its own).

        Used by the engine to mirror worker tasks into the parent trace:
        pass an explicit ``ref`` so worker-side roots (whose
        ``parent_ref`` names it) link up after stitching.
        """
        span = Span(self, name, attrs)
        span.start_wall = float(start_wall)
        span.duration_s = float(duration_s)
        span._thread_id = threading.get_ident()
        span.pid = os.getpid()
        span.ref = ref if ref else self._make_ref()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        return span

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (generators, leaked spans): unwind
        # to the span being closed rather than corrupting the tree.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------- exports

    def _finished(self) -> list[Span]:
        with self._lock:
            return list(self.roots)

    def totals(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans: {name: {count, total_s}}."""
        agg: dict[str, dict[str, float]] = {}
        for root in self._finished():
            for _, span in root.walk():
                entry = agg.setdefault(
                    span.name, {"count": 0, "total_s": 0.0}
                )
                entry["count"] += 1
                entry["total_s"] += span.duration_s
        return agg

    def to_jsonl(self) -> str:
        """One line per span, pre-order, with ``id``/``parent`` links.

        Each record also carries the stitching context: the tracer's
        ``trace_id``, the span's stable ``ref``, recording ``pid``/``tid``,
        and — on roots of a child tracer — the ``parent_ref`` naming the
        parent-side span they belong under.
        """
        lines: list[str] = []
        next_id = 0

        def emit(span: Span, parent: int | None) -> None:
            nonlocal next_id
            sid = next_id
            next_id += 1
            record = {
                "id": sid,
                "parent": parent,
                "name": span.name,
                "ts": span.start_wall,
                "duration_s": span.duration_s,
                "attrs": span.attrs,
                "trace_id": self.trace_id,
                "ref": span.ref,
                "pid": span.pid,
                "tid": span._thread_id,
            }
            if parent is None and self.parent_ref is not None:
                record["parent_ref"] = self.parent_ref
            lines.append(json.dumps(record, default=str))
            for child in span.children:
                emit(child, sid)

        for root in self._finished():
            emit(root, None)
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        """Chrome ``trace_event`` "complete" (ph=X) events, in µs."""
        events: list[dict[str, Any]] = []
        fallback_pid = os.getpid()
        for root in self._finished():
            for _, span in root.walk():
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": span.start_wall * 1e6,
                        "dur": span.duration_s * 1e6,
                        # pid recorded at span entry, not export time —
                        # spans mirrored across processes keep their origin.
                        "pid": span.pid or fallback_pid,
                        "tid": span._thread_id,
                        "args": {
                            k: str(v) for k, v in span.attrs.items()
                        },
                    }
                )
        return events

    def to_chrome_trace_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.to_chrome_trace(),
             "displayTimeUnit": "ms"},
        )

    def save_jsonl(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    def save_chrome_trace(self, path: str | Path) -> None:
        Path(path).write_text(self.to_chrome_trace_json(), encoding="utf-8")


# ------------------------------------------------------------- null objects


class _NullSpan:
    """Reusable no-op span: the cost of tracing when tracing is off."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    duration_s = 0.0
    ref = ""
    pid = 0

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Discards all spans; ``span()`` returns a shared no-op singleton."""

    roots: list = []
    trace_id = ""
    parent_ref: str | None = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def totals(self) -> dict[str, dict[str, float]]:
        return {}

    def to_jsonl(self) -> str:
        return ""

    def to_chrome_trace(self) -> list:
        return []

    def to_chrome_trace_json(self) -> str:
        return json.dumps({"traceEvents": [], "displayTimeUnit": "ms"})


NULL_TRACER = NullTracer()


# --------------------------------------------------------------- loading


def load_trace(path_or_lines: str | Path | Iterable[str]) -> list[dict]:
    """Rebuild the span tree from a JSONL trace export.

    Returns a list of root dicts, each with nested ``children`` —
    the inverse of :meth:`Tracer.to_jsonl`.
    """
    if isinstance(path_or_lines, (str, Path)):
        lines = Path(path_or_lines).read_text(encoding="utf-8").splitlines()
    else:
        lines = list(path_or_lines)
    by_id: dict[int, dict] = {}
    roots: list[dict] = []
    for line in lines:
        if not line.strip():
            continue
        rec = json.loads(line)
        rec["children"] = []
        by_id[rec["id"]] = rec
        parent = rec.get("parent")
        if parent is None:
            roots.append(rec)
        else:
            try:
                by_id[parent]["children"].append(rec)
            except KeyError:
                raise ValueError(
                    f"trace record {rec['id']} references missing "
                    f"parent {parent}"
                ) from None
    return roots


def render_span_tree(
    roots: list[dict], min_duration_s: float = 0.0
) -> str:
    """ASCII rendering of a loaded trace tree (for the CLI summary)."""
    out: list[str] = []

    def walk(rec: dict, depth: int) -> None:
        if rec["duration_s"] < min_duration_s and depth > 0:
            return
        indent = "  " * depth
        attrs = rec.get("attrs") or {}
        suffix = ""
        if attrs:
            shown = ", ".join(f"{k}={v}" for k, v in list(attrs.items())[:4])
            suffix = f"  [{shown}]"
        out.append(
            f"{indent}{rec['name']:<{max(28 - 2 * depth, 8)}} "
            f"{rec['duration_s'] * 1e3:10.2f} ms{suffix}"
        )
        for child in rec["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(out)
