"""Live-session heartbeat: a small JSON file overwritten every episode.

Long offline-training and online-tuning runs are opaque from outside the
process: the events file grows append-only, but answering "where is it
now and when will it finish?" means parsing the whole log.  The
:class:`HeartbeatWriter` answers it in O(1): after every per-step event
it atomically rewrites one JSON document with the current step, phase,
elapsed wall-clock, and an ETA extrapolated from the mean step time.

The writer is a :class:`~repro.utils.logging.TuningLogger`, so it plugs
into the existing event stream (alone, or fanned out next to a
``JsonlLogger`` via :class:`~repro.utils.logging.TeeLogger`) without any
trainer/tuner API change.  Writes are tmp-file + ``os.replace`` atomic:
a reader (``repro telemetry watch``) never sees a torn document, and a
crashed run leaves its last completed heartbeat behind as a post-mortem.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.utils.logging import TuningLogger

__all__ = [
    "HeartbeatWriter",
    "read_heartbeat",
    "render_heartbeat",
    "heartbeat_status",
    "default_stale_after",
    "finalize_heartbeat",
    "pid_alive",
]

#: event kinds that advance the heartbeat, mapped to the phase they imply
STEP_KINDS: dict[str, str] = {
    "offline-step": "offline-train",
    "online-step": "online-tune",
}

#: resilience intervention kinds surfaced in the heartbeat document
_RESILIENCE_KEYS: dict[str, str] = {
    "retry": "retries",
    "watchdog-abort": "watchdog_aborts",
    "fallback": "fallbacks",
    "state-repair": "state_repairs",
}

#: how many recent alerts the heartbeat document carries
_ACTIVE_ALERTS = 5


class HeartbeatWriter(TuningLogger):
    """Writes the heartbeat document on every per-step event.

    Parameters
    ----------
    path:
        Where the heartbeat JSON lives (overwritten in place).
    total_steps:
        Planned step count, for progress/ETA (``None`` => unknown).
    step_kinds:
        Event kinds that count as a step (default: offline + online).
    """

    def __init__(
        self,
        path: str | Path,
        total_steps: int | None = None,
        step_kinds: dict[str, str] | None = None,
    ):
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.total_steps = total_steps
        self._kinds = dict(STEP_KINDS if step_kinds is None else step_kinds)
        self._steps_done = 0
        self._start_perf = time.perf_counter()
        self._resilience = {key: 0 for key in _RESILIENCE_KEYS.values()}
        self._alerts_total = 0
        self._alerts_active: list[dict[str, Any]] = []
        self._best_reward: float | None = None
        self._best_duration_s: float | None = None
        self._round_s: float | None = None

    def event(self, kind: str, **fields: Any) -> None:
        # Non-step events never touch the file — they only accumulate
        # state that the next step's document will carry.
        if kind == "intervention":
            key = _RESILIENCE_KEYS.get(str(fields.get("intervention", "")))
            if key is not None:
                self._resilience[key] += 1
            return
        if kind == "alert":
            self._alerts_total += 1
            self._alerts_active.append({
                "name": fields.get("name"),
                "severity": fields.get("severity"),
                "step": fields.get("step"),
            })
            if len(self._alerts_active) > _ACTIVE_ALERTS:
                del self._alerts_active[0]
            return
        if kind == "population-round":
            # Sharded lockstep lands one barrier round at a time: N member
            # steps arrive in a burst, so the mean *step* interval is N×
            # shorter than the wall-clock gap between file updates.  The
            # slowest shard's round time is the true update cadence; the
            # next step document carries it so staleness detection can
            # key off rounds, not steps.
            round_s = fields.get("round_s")
            if isinstance(round_s, (int, float)):
                self._round_s = float(round_s)
            return
        phase = self._kinds.get(kind)
        if phase is None:
            return
        reward = fields.get("reward")
        if isinstance(reward, (int, float)) and (
            self._best_reward is None or reward > self._best_reward
        ):
            self._best_reward = float(reward)
        duration = fields.get("duration_s", fields.get("best_s"))
        if (
            fields.get("success", True)
            and isinstance(duration, (int, float))
            and (self._best_duration_s is None
                 or duration < self._best_duration_s)
        ):
            self._best_duration_s = float(duration)
        self._steps_done += 1
        elapsed = time.perf_counter() - self._start_perf
        eta: float | None = None
        if self.total_steps and self._steps_done:
            remaining = max(self.total_steps - self._steps_done, 0)
            eta = elapsed / self._steps_done * remaining
        doc = {
            "phase": phase,
            "step": self._steps_done,
            "total_steps": self.total_steps,
            "elapsed_s": round(elapsed, 6),
            "eta_s": round(eta, 6) if eta is not None else None,
            "updated_at": time.time(),
            "pid": os.getpid(),
            "resilience": dict(self._resilience),
            "alerts": {
                "total": self._alerts_total,
                "active": list(self._alerts_active),
            },
            "best_reward": self._best_reward,
            "best_duration_s": self._best_duration_s,
            "round_s": self._round_s,
            "last_event": {
                k: v
                for k, v in fields.items()
                if isinstance(v, (str, int, float, bool)) or v is None
            },
        }
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)


def read_heartbeat(path: str | Path) -> dict[str, Any]:
    """Load a heartbeat document; raises ``ValueError`` on a bad file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValueError(f"{path}: no heartbeat file") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a heartbeat JSON ({exc})") from None
    if not isinstance(doc, dict) or "step" not in doc:
        raise ValueError(f"{path}: not a heartbeat document")
    return doc


def finalize_heartbeat(path: str | Path, status: str = "completed") -> None:
    """Stamp a terminal marker into an existing heartbeat document.

    A run that stops *on purpose* before ``total_steps`` (time budget,
    Ctrl-C with a checkpoint) leaves a heartbeat whose pid is gone —
    indistinguishable from a crash without this marker.  The CLI calls
    it on clean exit and on handled interrupts; a run that truly died
    never gets here, which is exactly what makes ``crashed`` detectable.
    """
    path = Path(path)
    try:
        doc = read_heartbeat(path)
    except ValueError:
        return
    doc["finished"] = status
    doc["updated_at"] = time.time()
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def pid_alive(pid: Any) -> bool | None:
    """Best-effort liveness probe; ``None`` when it cannot be answered
    (missing/foreign pid, platforms without ``kill(pid, 0)``)."""
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - platform-dependent
        return None
    return True


def default_stale_after(doc: dict[str, Any]) -> float:
    """Staleness horizon for a heartbeat: 3× the observed mean step
    interval, floored at 10 s so fast sessions aren't flagged by
    scheduler jitter.

    Sharded population runs stamp ``round_s`` (the slowest shard's
    lockstep round time); when present it wins over the per-step mean,
    because a round delivers a whole population's steps in one burst and
    the per-step mean would under-estimate the update cadence by the
    population size."""
    round_s = doc.get("round_s")
    if isinstance(round_s, (int, float)) and round_s > 0:
        return max(3.0 * float(round_s), 10.0)
    step = doc.get("step") or 0
    elapsed = doc.get("elapsed_s") or 0.0
    if step > 0 and elapsed > 0.0:
        return max(3.0 * elapsed / step, 10.0)
    return 10.0


def heartbeat_status(
    doc: dict[str, Any],
    age_s: float,
    stale_after: float | None = None,
    alive: bool | None = None,
) -> str:
    """Classify a heartbeat: ``done``, ``crashed``, ``stalled``, or
    ``running``.

    ``age_s`` is how long ago the file was last written (use its mtime:
    the ``updated_at`` wall-clock inside the document is not monotonic
    across hosts).  ``stale_after`` overrides the 3×-step-interval
    default.  ``alive`` is the writer pid's liveness (see
    :func:`pid_alive`): ``False`` with no terminal marker means the
    process died mid-run — ``crashed``, not merely ``stalled``; ``None``
    (unknown) falls back to pure mtime staleness.
    """
    if doc.get("finished"):
        return "done"
    total = doc.get("total_steps")
    if total and doc.get("step", 0) >= total:
        return "done"
    if alive is False:
        return "crashed"
    horizon = (
        stale_after if stale_after is not None else default_stale_after(doc)
    )
    if age_s > horizon:
        return "stalled"
    return "running"


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_heartbeat(doc: dict[str, Any]) -> str:
    """One status line for the CLI watcher."""
    total = doc.get("total_steps")
    progress = (
        f"{doc['step']}/{total}" if total else f"{doc['step']}"
    )
    age = time.time() - doc.get("updated_at", time.time())
    stale = "  (stale)" if age > 60 else ""
    extras = ""
    resilience = doc.get("resilience") or {}
    if any(resilience.values()):
        parts = [
            f"{name.replace('_', ' ')} {count}"
            for name, count in resilience.items()
            if count
        ]
        extras += f"  [{', '.join(parts)}]"
    alerts = doc.get("alerts") or {}
    if alerts.get("total"):
        worst = alerts.get("active") or [{}]
        extras += (
            f"  alerts {alerts['total']}"
            f" (last: {worst[-1].get('name', '?')})"
        )
    return (
        f"{doc.get('phase', '?'):<14} step {progress:<12} "
        f"elapsed {_fmt_duration(doc.get('elapsed_s')):>8}  "
        f"eta {_fmt_duration(doc.get('eta_s')):>8}  "
        f"pid {doc.get('pid', '?')}{stale}{extras}"
    )
