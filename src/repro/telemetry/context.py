"""RunContext: one object carrying logger, tracer, metrics, and manifest.

The trainer/tuner/simulator APIs accept a single ``telemetry`` argument
instead of growing one keyword per concern.  The default
:data:`NULL_CONTEXT` wires null implementations of all four pillars, so
instrumented hot paths cost one no-op method call when telemetry is off
— no branches, no allocation.

Typical use::

    ctx = RunContext.recording(
        trace="run.jsonl",          # + run.chrome.json written on save()
        metrics="run.prom",         # Prometheus text (.json => JSON)
        manifest="run.manifest.json",
        seed=7,
    )
    tuner.train_offline(env, 1500, telemetry=ctx)
    tuner.tune_online(env, steps=5, telemetry=ctx)
    ctx.save()
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.telemetry.diagnostics import (
    NULL_DIAGNOSTICS,
    DiagnosticsEngine,
    NullDiagnostics,
)
from repro.telemetry.ledger import NULL_LEDGER, CostLedger, NullLedger
from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.profiling import NULL_PROFILER, NullProfiler, Profiler
from repro.telemetry.tracing import NULL_TRACER, NullTracer, Tracer
from repro.utils.logging import NullLogger, TuningLogger

__all__ = ["RunContext", "NULL_CONTEXT", "ensure_context"]


class RunContext:
    """Carrier for the telemetry pillars of one tuning run.

    Parameters
    ----------
    logger:
        A :class:`~repro.utils.logging.TuningLogger` for discrete events
        (``NullLogger`` when omitted).
    tracer:
        Span tracer; pass a :class:`~repro.telemetry.tracing.Tracer` to
        record, default :class:`NullTracer`.
    metrics:
        A :class:`~repro.telemetry.metrics.MetricsRegistry`; default
        null registry.
    manifest:
        A :class:`~repro.telemetry.manifest.RunManifest` for provenance.
    profiler:
        A :class:`~repro.telemetry.profiling.Profiler` aggregating phase
        timings/allocations; default null profiler (no-op phases).
    diagnostics:
        A :class:`~repro.telemetry.diagnostics.DiagnosticsEngine`
        running learning-health detectors; default null engine (all
        hooks are no-ops, ``enabled`` is False).
    trace_path, metrics_path, manifest_path:
        Where :meth:`save` persists each pillar (unset => not written).
    """

    def __init__(
        self,
        logger: TuningLogger | None = None,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullRegistry | None = None,
        manifest: RunManifest | None = None,
        profiler: Profiler | NullProfiler | None = None,
        diagnostics: DiagnosticsEngine | NullDiagnostics | None = None,
        ledger: CostLedger | NullLedger | None = None,
        trace_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
        manifest_path: str | Path | None = None,
    ):
        self.logger = logger if logger is not None else NullLogger()
        if tracer is None:
            tracer = Tracer() if trace_path is not None else NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            metrics = (
                MetricsRegistry() if metrics_path is not None
                else NULL_REGISTRY
            )
        self.metrics = metrics
        self.manifest = manifest
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.diagnostics = (
            diagnostics if diagnostics is not None else NULL_DIAGNOSTICS
        )
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.trace_path = Path(trace_path) if trace_path else None
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.manifest_path = Path(manifest_path) if manifest_path else None

    # ----------------------------------------------------------- factories

    @classmethod
    def recording(
        cls,
        trace: str | Path | None = None,
        metrics: str | Path | None = None,
        manifest: str | Path | None = None,
        logger: TuningLogger | None = None,
        seed: int | None = None,
        kind: str = "run",
        profiler: Profiler | None = None,
        diagnostics: DiagnosticsEngine | None = None,
        ledger: CostLedger | None = None,
    ) -> "RunContext":
        """A context that records everything, persisting what has a path.

        Unlike the raw constructor, tracer and registry are always live
        here — callers can inspect them in-process even without output
        files.  The profiler and diagnostics engine stay null unless
        passed explicitly (both are opt-in even on a recording context).
        """
        return cls(
            logger=logger,
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            manifest=RunManifest(kind=kind, seed=seed),
            profiler=profiler,
            diagnostics=diagnostics,
            ledger=ledger,
            trace_path=trace,
            metrics_path=metrics,
            manifest_path=manifest,
        )

    @property
    def enabled(self) -> bool:
        """True if any pillar is live (used only for cheap short-circuits
        around *building* attribute dicts, never around recording)."""
        return not (
            isinstance(self.tracer, NullTracer)
            and isinstance(self.metrics, NullRegistry)
            and isinstance(self.logger, NullLogger)
            and isinstance(self.profiler, NullProfiler)
            and isinstance(self.diagnostics, NullDiagnostics)
            and not self.ledger.enabled
            and self.manifest is None
        )

    # ----------------------------------------------------- delegate: spans

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    # ---------------------------------------------------- delegate: phases

    def phase(self, name: str):
        """Profiler phase frame (no-op on the default null profiler)."""
        return self.profiler.phase(name)

    # ---------------------------------------------------- delegate: events

    def event(self, kind: str, **fields: Any) -> None:
        self.logger.event(kind, **fields)

    # --------------------------------------------------- delegate: metrics

    def count(
        self, name: str, amount: float = 1.0, help: str = "",
        **labels: Any,
    ) -> None:
        self.metrics.counter(name, help=help, labels=labels or None).inc(
            amount
        )

    def observe(
        self, name: str, value: float, help: str = "", **labels: Any
    ) -> None:
        self.metrics.histogram(
            name, help=help, labels=labels or None
        ).observe(value)

    def gauge_set(
        self, name: str, value: float, help: str = "", **labels: Any
    ) -> None:
        self.metrics.gauge(name, help=help, labels=labels or None).set(value)

    # ---------------------------------------------------- delegate: ledger

    def charge(self, account: str, amount_s: float, **kwargs: Any) -> None:
        self.ledger.charge(account, amount_s, **kwargs)

    def counterfactual(
        self, account: str, amount_s: float, **kwargs: Any
    ) -> None:
        self.ledger.counterfactual(account, amount_s, **kwargs)

    # ------------------------------------------------------------- outputs

    def finish(self) -> None:
        """Seal the manifest: wall-clock breakdown + end timestamp."""
        if self.manifest is not None:
            totals = self.tracer.totals()
            if totals:
                self.manifest.record_wall_clock(totals)
            self.manifest.finish()

    def save(self) -> list[Path]:
        """Persist every pillar that has a configured path.

        Returns the list of files written.  The trace is written twice:
        the JSONL tree at ``trace_path`` and a Chrome ``trace_event``
        file next to it (suffix ``.chrome.json``).
        """
        self.finish()
        written: list[Path] = []
        for path in (self.trace_path, self.metrics_path,
                     self.manifest_path):
            if path is not None and path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
        if self.trace_path is not None:
            self.tracer.save_jsonl(self.trace_path)
            written.append(self.trace_path)
            chrome = self.trace_path.with_suffix(".chrome.json")
            self.tracer.save_chrome_trace(chrome)
            written.append(chrome)
        if self.metrics_path is not None:
            if self.metrics_path.suffix == ".json":
                text = self.metrics.to_json_text() + "\n"
            else:
                text = self.metrics.to_prometheus_text()
            self.metrics_path.write_text(text, encoding="utf-8")
            written.append(self.metrics_path)
        if self.manifest_path is not None and self.manifest is not None:
            self.manifest.save(self.manifest_path)
            written.append(self.manifest_path)
        self.ledger.flush()
        if self.ledger.enabled and self.ledger.path is not None:
            written.append(Path(self.ledger.path))
        self.logger.flush()
        return written

    def close(self) -> None:
        self.save()
        self.ledger.close()
        self.logger.close()

    def __enter__(self) -> "RunContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # A context is shared infrastructure, not run state: copying a tuner
    # (e.g. ``fork_tuner`` deep-copies trained models) must alias the
    # same context, not duplicate lock-bearing registries/tracers.
    def __copy__(self) -> "RunContext":
        return self

    def __deepcopy__(self, memo) -> "RunContext":
        return self


#: the shared disabled context — all pillars are no-ops
NULL_CONTEXT = RunContext()


def ensure_context(
    telemetry: RunContext | None, logger: TuningLogger | None = None
) -> RunContext:
    """Coerce the (telemetry, logger) constructor pair into one context.

    Keeps every pre-telemetry call site working: passing only ``logger``
    wraps it in a fresh context; passing ``telemetry`` uses it as-is
    (with ``logger`` grafted on if the context has none); passing
    neither yields the shared :data:`NULL_CONTEXT`.
    """
    if telemetry is None:
        if logger is None:
            return NULL_CONTEXT
        return RunContext(logger=logger)
    if logger is not None and isinstance(telemetry.logger, NullLogger):
        return RunContext(
            logger=logger,
            tracer=telemetry.tracer,
            metrics=telemetry.metrics,
            manifest=telemetry.manifest,
            profiler=telemetry.profiler,
            diagnostics=telemetry.diagnostics,
            ledger=telemetry.ledger,
            trace_path=telemetry.trace_path,
            metrics_path=telemetry.metrics_path,
            manifest_path=telemetry.manifest_path,
        )
    return telemetry
