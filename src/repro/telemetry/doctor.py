"""Post-mortem diagnosis: rank a run's learning-health findings.

``repro doctor <run-dir>`` reads whatever artifacts a run left behind —
JSONL events (or a merged bus timeline), the run manifest, the final
heartbeat — and prints a ranked diagnosis with remediation hints.

Two evidence sources, in order of preference:

1. **Live alerts** — ``alert`` events recorded by a session that ran
   with ``--diagnostics``; these carry full detector evidence (critic
   losses, RDPER pool stats) that cannot be reconstructed offline.
2. **Replayed detectors** — for runs without live diagnostics, the
   step/intervention events are re-fed through
   :func:`~repro.telemetry.diagnostics.replay_events`; only the
   detectors whose inputs survive in the event stream (reward plateau,
   intervention rate) can fire, and their findings are marked
   ``inferred``.

Ranking is ``(severity, count, recency)`` — the most severe, most
frequently escalated, most recent cause first.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .bus import TIMELINE_NAME, read_jsonl_lenient
from .diagnostics import SEVERITY_RANK, replay_events
from .heartbeat import read_heartbeat

__all__ = ["diagnose_run", "render_diagnosis", "REMEDIATIONS"]

#: remediation hints keyed by detector cause name (stable API)
REMEDIATIONS: dict[str, str] = {
    "q-overestimation": (
        "critic predictions outrun realized rewards — raise the Twin-Q "
        "screening threshold (Q_th), increase policy_noise, or slow the "
        "actor (higher policy_delay)"
    ),
    "critic-divergence": (
        "critic loss is running away — lower the learning rate, shrink "
        "fine_tune_updates, or reset from the last good checkpoint "
        "(repro tune --resume)"
    ),
    "reward-plateau": (
        "no best-reward improvement — widen exploration_sigma, lower "
        "RDPER R_th so fresher transitions reach the high pool, or stop "
        "early to save evaluation budget"
    ),
    "rdper-stale-pool": (
        "the high-reward pool stopped accepting transitions — lower the "
        "reward threshold (R_th) or check whether the workload regressed"
    ),
    "rdper-beta-drift": (
        "realized high/low batch mix drifted from beta — the high pool "
        "is starved or flooded; retune beta or R_th"
    ),
    "exploration-collapse": (
        "exploration noise collapsed (SafetyGuard decay) — investigate "
        "the failures that triggered fallbacks, then raise sigma_min or "
        "relax the guard's max_consecutive_failures"
    ),
    "intervention-rate": (
        "retries/watchdog aborts/fallbacks fire on most steps — the "
        "environment is unstable; use --fault-profile retries, raise "
        "the watchdog multiple, or fix the cluster before tuning"
    ),
    "engine-task-failure": (
        "a grid cell kept failing in the worker — read the propagated "
        "traceback in the failure report, fix the cell or re-run with "
        "--task-retries/--lenient; completed cells are cached, so a "
        "re-run only recomputes the quarantined ones"
    ),
    "engine-task-timeout": (
        "a worker blew its per-task deadline and was reaped — raise "
        "--task-timeout (or let the EWMA warm up on a smaller grid), "
        "or investigate why that cell hangs"
    ),
    "engine-pool-rebuilt": (
        "the worker pool died mid-grid (OOM killer, segfault, external "
        "kill) — lower --jobs, check dmesg/cgroup memory limits; the "
        "supervisor re-dispatched the incomplete cells automatically"
    ),
    "engine-cache-corruption": (
        "result-cache entries failed their checksum and were moved to "
        ".quarantine/ — inspect or delete them; the affected cells "
        "recompute automatically on the next run"
    ),
}

#: engine supervisor event kinds synthesized into doctor findings
_ENGINE_EVENT_SEVERITY: dict[str, str] = {
    "task-failed": "warning",
    "pool-rebuilt": "warning",
    "cache-quarantined": "warning",
}


def _engine_event_alerts(
    records: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Convert engine supervisor events into alert-shaped records.

    The experiment engine does not run learning-health detectors, but
    its ``task-failed`` / ``pool-rebuilt`` / ``cache-quarantined``
    events are first-class evidence of an unhealthy *run* — surface
    them through the same ranked-findings pipeline.
    """
    alerts: list[dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind not in _ENGINE_EVENT_SEVERITY:
            continue
        if kind == "task-failed":
            timed_out = bool(record.get("timed_out"))
            name = (
                "engine-task-timeout" if timed_out else "engine-task-failure"
            )
            message = (
                f"task {record.get('task_kind', '?')}"
                f"[{record.get('index', '?')}] "
                + ("hit its deadline" if timed_out
                   else f"raised {record.get('exc_type', '?')}: "
                        f"{record.get('message', '')}")
            )
            data = {
                k: record[k]
                for k in ("task_kind", "index", "attempt", "worker_crash")
                if k in record
            }
        elif kind == "pool-rebuilt":
            name = "engine-pool-rebuilt"
            message = (
                f"worker pool rebuilt with "
                f"{record.get('incomplete', '?')} task(s) incomplete"
            )
            data = {"incomplete": record.get("incomplete")}
        else:  # cache-quarantined
            name = "engine-cache-corruption"
            message = (
                f"{record.get('count', '?')} corrupt cache entr(y|ies) "
                f"quarantined to {record.get('quarantine_dir', '?')}"
            )
            data = {"count": record.get("count")}
        alerts.append({
            "name": name,
            "severity": _ENGINE_EVENT_SEVERITY[kind],
            "step": record.get("step"),
            "message": message,
            "data": data,
        })
    return alerts


def _find_events_file(run_dir: Path) -> Path | None:
    """Pick the richest event stream available under a run directory."""
    timeline = run_dir / TIMELINE_NAME
    if timeline.is_file():
        return timeline
    candidates = sorted(run_dir.glob("*.jsonl"))
    diagnosable = (
        ("online-step", "offline-step", "alert")
        + tuple(_ENGINE_EVENT_SEVERITY)
    )
    best: tuple[int, Path] | None = None
    for path in candidates:
        records = read_jsonl_lenient(path)
        score = sum(1 for r in records if r.get("kind") in diagnosable)
        if score and (best is None or score > best[0]):
            best = (score, path)
    return best[1] if best else None


def _load_manifest(run_dir: Path) -> dict[str, Any] | None:
    for name in ("manifest.json", "run.manifest.json"):
        path = run_dir / name
        if path.is_file():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(doc, dict):
                return doc
    for path in sorted(run_dir.glob("*manifest*.json")):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            return doc
    return None


def _load_heartbeat(run_dir: Path) -> dict[str, Any] | None:
    for path in sorted(run_dir.glob("*.json")):
        if "manifest" in path.name or path.name.endswith(".chrome.json"):
            continue
        try:
            return read_heartbeat(path)
        except ValueError:
            continue
    return None


def _rank_findings(
    alerts: list[dict[str, Any]], inferred: bool
) -> list[dict[str, Any]]:
    """Fold raw alert records into one finding per cause, ranked."""
    by_name: dict[str, dict[str, Any]] = {}
    for idx, alert in enumerate(alerts):
        name = str(alert.get("name", "?"))
        severity = str(alert.get("severity", "info"))
        entry = by_name.setdefault(name, {
            "name": name,
            "severity": "info",
            "count": 0,
            "first_step": alert.get("step"),
            "last_step": alert.get("step"),
            "message": alert.get("message", ""),
            "data": alert.get("data", {}),
            "inferred": bool(alert.get("_inferred", inferred)),
            "_order": idx,
        })
        entry["count"] += 1
        entry["last_step"] = alert.get("step")
        entry["_order"] = idx
        if SEVERITY_RANK.get(severity, 0) >= SEVERITY_RANK.get(
            entry["severity"], 0
        ):
            entry["severity"] = severity
            entry["message"] = alert.get("message", entry["message"])
            entry["data"] = alert.get("data", entry["data"])
    findings = list(by_name.values())
    findings.sort(
        key=lambda f: (
            -SEVERITY_RANK.get(f["severity"], 0),
            -f["count"],
            -f.pop("_order"),
        )
    )
    for finding in findings:
        finding["remediation"] = REMEDIATIONS.get(
            finding["name"], "no remediation hint recorded for this cause"
        )
    return findings


def diagnose_run(target: str | Path) -> dict[str, Any]:
    """Diagnose a run directory (or a single events file).

    Returns a JSON-ready document::

        {"run": {...context...},
         "findings": [{name, severity, count, last_step, message,
                       data, inferred, remediation}, ...],
         "healthy": bool}
    """
    target = Path(target)
    if target.is_dir():
        run_dir = target
        events_path = _find_events_file(run_dir)
    else:
        run_dir = target.parent
        events_path = target

    records = (
        read_jsonl_lenient(events_path) if events_path is not None else []
    )
    live_alerts = [r for r in records if r.get("kind") == "alert"]
    engine_alerts = _engine_event_alerts(records)
    if live_alerts:
        findings = _rank_findings(
            live_alerts + engine_alerts, inferred=False
        )
    else:
        engine = replay_events(records)
        replayed = [
            dict(a.as_event_fields(), _inferred=True)
            for a in engine.alerts
        ]
        findings = _rank_findings(
            engine_alerts + replayed, inferred=False
        )

    steps = [
        r for r in records
        if r.get("kind") in ("online-step", "offline-step")
    ]
    manifest = _load_manifest(run_dir)
    heartbeat = _load_heartbeat(run_dir)

    run_info: dict[str, Any] = {
        "path": str(target),
        "events_file": str(events_path) if events_path else None,
        "events": len(records),
        "steps": len(steps),
        "alerts_live": len(live_alerts),
        "alerts_engine": len(engine_alerts),
    }
    if manifest is not None:
        for key in ("kind", "seed", "git_sha", "elapsed_s"):
            if key in manifest:
                run_info[key] = manifest[key]
    if heartbeat is not None:
        run_info["heartbeat"] = {
            "phase": heartbeat.get("phase"),
            "step": heartbeat.get("step"),
            "total_steps": heartbeat.get("total_steps"),
            "resilience": heartbeat.get("resilience"),
            "alerts": (heartbeat.get("alerts") or {}).get("total"),
        }

    graded = [
        f for f in findings
        if SEVERITY_RANK.get(f["severity"], 0) >= SEVERITY_RANK["warning"]
    ]
    return {
        "run": run_info,
        "findings": findings,
        "healthy": not graded,
    }


_SEVERITY_TAG = {"critical": "CRIT", "warning": "WARN", "info": "info"}


def render_diagnosis(report: dict[str, Any], top: int | None = None) -> str:
    """Human-readable ranked diagnosis."""
    run = report.get("run", {})
    lines = [f"doctor: {run.get('path', '?')}"]
    meta = []
    if run.get("kind"):
        meta.append(f"kind {run['kind']}")
    if run.get("seed") is not None:
        meta.append(f"seed {run['seed']}")
    meta.append(f"{run.get('steps', 0)} steps")
    meta.append(f"{run.get('events', 0)} events")
    lines.append("  " + " · ".join(meta))
    hb = run.get("heartbeat")
    if hb:
        resilience = hb.get("resilience") or {}
        fired = ", ".join(
            f"{k.replace('_', ' ')} {v}" for k, v in resilience.items() if v
        )
        lines.append(
            f"  last heartbeat: {hb.get('phase', '?')} step "
            f"{hb.get('step', '?')}/{hb.get('total_steps') or '?'}"
            + (f"  [{fired}]" if fired else "")
        )
    lines.append("")

    findings = report.get("findings", [])
    if top is not None:
        findings = findings[:top]
    if not findings:
        lines.append("no findings — the event stream looks healthy")
        return "\n".join(lines) + "\n"

    for rank, f in enumerate(findings, start=1):
        tag = _SEVERITY_TAG.get(f["severity"], f["severity"])
        origin = " (inferred from replay)" if f.get("inferred") else ""
        step = f.get("last_step")
        at = f" @ step {step}" if step is not None else ""
        lines.append(
            f"{rank}. [{tag}] {f['name']} ×{f['count']}{at}{origin}"
        )
        if f.get("message"):
            lines.append(f"     {f['message']}")
        data = f.get("data") or {}
        if data:
            kv = ", ".join(f"{k}={v}" for k, v in data.items())
            lines.append(f"     evidence: {kv}")
        lines.append(f"     fix: {f['remediation']}")
    if report.get("healthy"):
        lines.append("")
        lines.append("verdict: healthy (info-level findings only)")
    return "\n".join(lines) + "\n"
