"""Learning-health diagnostics: streaming detectors over the tuning loop.

The telemetry pillars so far answer "what happened" (events), "how
much" (metrics), "where did the time go" (traces/profiles) — none of
them answer *whether the learning is healthy*.  A diverging critic, a
Q-overestimation spiral the Twin-Q mechanism was supposed to cap, a
stale RDPER high-reward pool, or exploration noise collapsed by repeated
SafetyGuard fallbacks all burn evaluation budget silently until the
final report.

:class:`DiagnosticsEngine` is the sixth :class:`RunContext` pillar: a
set of streaming, allocation-light detectors fed from the existing
step/update hooks (TD3 updates, RDPER samples, online/offline steps,
resilience interventions).  Each detector keeps O(1) state — EWMAs,
small ring buffers, counters — and grades its finding into a severity
(``info`` < ``warning`` < ``critical``) with a machine-readable cause
name.  Alerts are emitted as ``alert`` events on the run's event stream
(and kept in-process on :attr:`DiagnosticsEngine.alerts`), so they flow
to JSONL event files, heartbeats, and the cross-process event bus
without any new plumbing.

Detectors are **pure observers**: they draw no random numbers, never
touch the environment or the agent, and never feed back into the tuning
loop — a session with diagnostics enabled is bit-identical (science
outputs) to one without, which the ``-m determinism`` suite enforces.

Detector catalog (cause names are stable API):

==================== ===================================================
``q-overestimation``  EWMA gap between the critic's predicted Q for the
                      executed action and the realized Eq.(1) reward.
``critic-divergence`` critic-loss EWMA rising and a large multiple of
                      its historical floor (slope + level test).
``reward-plateau``    best reward not improved for N consecutive steps.
``rdper-stale-pool``  pushes since the high-reward pool last accepted a
                      transition (R_th too high / rewards degraded).
``rdper-beta-drift``  realized high-reward batch fraction drifted from
                      the configured β (a starved or flooded pool).
``exploration-collapse`` effective exploration σ collapsed relative to
                      the first σ observed (e.g. SafetyGuard decay).
``intervention-rate`` resilience interventions (retries, watchdog
                      aborts, fallbacks, state repairs) per step over a
                      sliding window.
==================== ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "Alert",
    "DiagnosticsConfig",
    "DiagnosticsEngine",
    "NullDiagnostics",
    "NULL_DIAGNOSTICS",
    "SEVERITY_RANK",
    "replay_events",
]

#: ordering used to grade and rank alerts
SEVERITY_RANK: dict[str, int] = {"info": 0, "warning": 1, "critical": 2}


@dataclass(frozen=True)
class Alert:
    """One graded finding from a detector.

    ``name`` is the machine-readable cause (stable across releases);
    ``data`` carries the detector's evidence (plain scalars only, so the
    alert serializes losslessly into JSONL events).
    """

    name: str
    severity: str
    step: int | None
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_event_fields(self) -> dict[str, Any]:
        """The keyword fields for ``logger.event("alert", **fields)``."""
        return {
            "name": self.name,
            "severity": self.severity,
            "step": self.step,
            "message": self.message,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class DiagnosticsConfig:
    """Thresholds for every detector (defaults tuned for Eq.(1)'s
    reward scale, where rewards live in roughly [-1, 1])."""

    #: EWMA smoothing for all exponential averages
    ewma_alpha: float = 0.3

    # --- q-overestimation: EWMA(q_pred) - EWMA(reward) ---
    q_gap_warning: float = 0.5
    q_gap_critical: float = 1.0
    q_min_samples: int = 3

    # --- critic divergence: loss EWMA vs floor, with positive slope ---
    loss_factor_warning: float = 3.0
    loss_factor_critical: float = 10.0
    loss_min_updates: int = 10
    loss_window: int = 8

    # --- reward plateau ---
    plateau_steps: int = 25

    # --- RDPER pool health ---
    stale_pushes_warning: int = 200
    stale_pushes_critical: int = 800
    beta_tolerance: float = 0.15
    beta_min_samples: int = 8

    # --- exploration collapse: sigma relative to first sigma seen ---
    sigma_collapse_warning: float = 0.25
    sigma_collapse_critical: float = 0.10

    # --- resilience intervention rate per step, sliding window ---
    intervention_window: int = 8
    intervention_min_steps: int = 4
    intervention_rate_warning: float = 0.5
    intervention_rate_critical: float = 1.0


def _severity_at_least(severity: str, floor: str) -> bool:
    return SEVERITY_RANK[severity] >= SEVERITY_RANK[floor]


class _Ewma:
    """Exponentially weighted moving average (first sample seeds it)."""

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.value: float | None = None
        self.count = 0

    def update(self, x: float) -> float:
        self.count += 1
        if self.value is None:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        return self.value


class _Latch:
    """Escalation gate: a detector re-alerts only when its severity
    *rises*; once the condition clears, the latch re-arms.  Keeps a
    persistent pathology from flooding the event stream."""

    __slots__ = ("level",)

    def __init__(self):
        self.level = -1  # below "info"

    def fire(self, severity: str | None) -> str | None:
        """Pass the current graded severity (or None when healthy);
        returns the severity to emit, or None to stay quiet."""
        if severity is None:
            self.level = -1
            return None
        rank = SEVERITY_RANK[severity]
        if rank > self.level:
            self.level = rank
            return severity
        return None


class DiagnosticsEngine:
    """Streaming learning-health detectors with severity-graded alerts.

    Feed it through the ``observe_*`` hooks (the instrumented code does
    this automatically once the engine rides on a
    :class:`~repro.telemetry.context.RunContext`); collect findings via
    :meth:`drain_alerts` (pending, once each) or :attr:`alerts` (full
    history).  All detector state is plain Python scalars, so the engine
    pickles cleanly and adds no per-observation allocation beyond the
    alerts themselves.
    """

    #: real engines report True; the :class:`NullDiagnostics` stand-in
    #: reports False so hot paths can skip building observation kwargs
    enabled = True

    def __init__(self, config: DiagnosticsConfig | None = None):
        self.config = config if config is not None else DiagnosticsConfig()
        c = self.config
        #: every alert ever raised, in order
        self.alerts: list[Alert] = []
        self._pending: list[Alert] = []
        self._step: int | None = None

        # q-overestimation
        self._q_ewma = _Ewma(c.ewma_alpha)
        self._reward_ewma = _Ewma(c.ewma_alpha)
        self._q_latch = _Latch()

        # critic divergence
        self._loss_ewma = _Ewma(c.ewma_alpha)
        self._loss_floor: float | None = None
        self._loss_ring: list[float] = []
        self._loss_latch = _Latch()

        # reward plateau
        self._best_reward: float | None = None
        self._best_step = 0
        self._steps_seen = 0
        self._plateau_latch = _Latch()

        # RDPER
        self._beta_ewma = _Ewma(c.ewma_alpha)
        self._stale_latch = _Latch()
        self._beta_latch = _Latch()

        # exploration collapse
        self._sigma_baseline: float | None = None
        self._sigma_latch = _Latch()

        # interventions
        self._interventions: dict[str, int] = {}
        self._pending_interventions = 0
        self._rate_ring: list[int] = []
        self._rate_latch = _Latch()

    # ------------------------------------------------------------- raising

    def _raise_alert(
        self,
        latch: _Latch,
        name: str,
        severity: str | None,
        message: str,
        **data: Any,
    ) -> None:
        emit = latch.fire(severity)
        if emit is None:
            return
        alert = Alert(
            name=name,
            severity=emit,
            step=self._step,
            message=message,
            data={
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in data.items()
            },
        )
        self.alerts.append(alert)
        self._pending.append(alert)

    def drain_alerts(self) -> list[Alert]:
        """Alerts raised since the last drain (each returned once)."""
        if not self._pending:
            return []
        out = self._pending
        self._pending = []
        return out

    # --------------------------------------------------------------- hooks

    def observe_update(
        self, critic_loss: float, mean_q: float | None = None,
        actor_updated: bool = False,
    ) -> None:
        """One agent gradient update (TD3's ``update`` hook)."""
        c = self.config
        ewma = self._loss_ewma.update(critic_loss)
        if self._loss_floor is None or ewma < self._loss_floor:
            self._loss_floor = ewma
        ring = self._loss_ring
        ring.append(ewma)
        if len(ring) > c.loss_window:
            del ring[0]
        severity = None
        if (
            self._loss_ewma.count >= c.loss_min_updates
            and self._loss_floor is not None
            and self._loss_floor > 0.0
            and len(ring) == c.loss_window
            and ewma > ring[0]  # rising over the window, not a spike
        ):
            factor = ewma / self._loss_floor
            if factor >= c.loss_factor_critical:
                severity = "critical"
            elif factor >= c.loss_factor_warning:
                severity = "warning"
        self._raise_alert(
            self._loss_latch,
            "critic-divergence",
            severity,
            "critic loss EWMA is rising far above its historical floor",
            ewma=float(ewma),
            floor=float(self._loss_floor or 0.0),
            updates=self._loss_ewma.count,
        )

    def observe_step(
        self,
        step: int,
        reward: float,
        success: bool,
        q_pred: float | None = None,
        sigma: float | None = None,
    ) -> None:
        """One completed tuning/training step.

        ``q_pred`` is the critic's conservative prediction for the
        executed action (min twin-Q); ``sigma`` the effective
        exploration noise this step (``None`` for fallback steps, which
        explore nothing by design).
        """
        c = self.config
        self._step = step
        self._steps_seen += 1

        # -- q-overestimation: prediction vs realized Eq.(1) reward
        self._reward_ewma.update(reward)
        if q_pred is not None:
            self._q_ewma.update(q_pred)
        if (
            self._q_ewma.count >= c.q_min_samples
            and self._reward_ewma.count >= c.q_min_samples
        ):
            gap = (self._q_ewma.value or 0.0) - (self._reward_ewma.value or 0.0)
            severity = None
            if gap >= c.q_gap_critical:
                severity = "critical"
            elif gap >= c.q_gap_warning:
                severity = "warning"
            self._raise_alert(
                self._q_latch,
                "q-overestimation",
                severity,
                "critic predictions run far above realized rewards",
                gap=float(gap),
                q_ewma=float(self._q_ewma.value or 0.0),
                reward_ewma=float(self._reward_ewma.value or 0.0),
            )

        # -- reward plateau
        if self._best_reward is None or reward > self._best_reward:
            self._best_reward = float(reward)
            self._best_step = self._steps_seen
        stagnant = self._steps_seen - self._best_step
        severity = None
        if stagnant >= 2 * c.plateau_steps:
            severity = "critical"
        elif stagnant >= c.plateau_steps:
            severity = "warning"
        self._raise_alert(
            self._plateau_latch,
            "reward-plateau",
            severity,
            "best reward has not improved for many steps",
            stagnant_steps=stagnant,
            best_reward=float(self._best_reward),
        )

        # -- exploration collapse
        if sigma is not None and sigma > 0.0:
            if self._sigma_baseline is None:
                self._sigma_baseline = float(sigma)
            ratio = sigma / self._sigma_baseline
            severity = None
            if ratio <= c.sigma_collapse_critical:
                severity = "critical"
            elif ratio <= c.sigma_collapse_warning:
                severity = "warning"
            self._raise_alert(
                self._sigma_latch,
                "exploration-collapse",
                severity,
                "exploration noise collapsed relative to its baseline",
                sigma=float(sigma),
                baseline=float(self._sigma_baseline),
            )

        # -- intervention rate over a sliding window of steps
        ring = self._rate_ring
        ring.append(self._pending_interventions)
        self._pending_interventions = 0
        if len(ring) > c.intervention_window:
            del ring[0]
        severity = None
        if len(ring) >= c.intervention_min_steps:
            rate = sum(ring) / len(ring)
            if rate >= c.intervention_rate_critical:
                severity = "critical"
            elif rate >= c.intervention_rate_warning:
                severity = "warning"
            self._raise_alert(
                self._rate_latch,
                "intervention-rate",
                severity,
                "resilience interventions are firing on most steps",
                rate=float(rate),
                window=len(ring),
                total=sum(self._interventions.values()),
            )

    def observe_rdper(
        self,
        realized_beta: float,
        beta: float,
        staleness: int,
        high_size: int,
        low_size: int,
    ) -> None:
        """One RDPER batch sample (pool occupancy + realized β)."""
        c = self.config
        severity = None
        if staleness >= c.stale_pushes_critical:
            severity = "critical"
        elif staleness >= c.stale_pushes_warning:
            severity = "warning"
        self._raise_alert(
            self._stale_latch,
            "rdper-stale-pool",
            severity,
            "the high-reward pool has not accepted a transition recently",
            staleness=staleness,
            high_size=high_size,
            low_size=low_size,
        )

        ewma = self._beta_ewma.update(realized_beta)
        severity = None
        if self._beta_ewma.count >= c.beta_min_samples:
            drift = abs(ewma - beta)
            if drift > 2 * c.beta_tolerance:
                severity = "critical"
            elif drift > c.beta_tolerance:
                severity = "warning"
        self._raise_alert(
            self._beta_latch,
            "rdper-beta-drift",
            severity,
            "realized high-reward batch fraction drifted from beta",
            realized_beta=float(ewma),
            beta=float(beta),
        )

    def observe_intervention(self, kind: str) -> None:
        """One resilience intervention (retry, watchdog-abort,
        fallback, state-repair) — folded into the rate window at the
        next :meth:`observe_step`."""
        self._interventions[kind] = self._interventions.get(kind, 0) + 1
        self._pending_interventions += 1

    # ------------------------------------------------------------- summary

    def summary(self) -> dict[str, Any]:
        """Aggregate view: alert counts per cause, worst severity."""
        by_name: dict[str, dict[str, Any]] = {}
        for alert in self.alerts:
            entry = by_name.setdefault(
                alert.name,
                {"count": 0, "severity": "info", "last_step": None},
            )
            entry["count"] += 1
            entry["last_step"] = alert.step
            if _severity_at_least(alert.severity, entry["severity"]):
                entry["severity"] = alert.severity
        return {
            "alerts_total": len(self.alerts),
            "steps_seen": self._steps_seen,
            "interventions": dict(self._interventions),
            "by_name": by_name,
        }


class NullDiagnostics:
    """No-op stand-in backing the disabled default.

    Every hook is a pass; ``enabled`` is False so instrumented code can
    skip computing observation inputs (e.g. the extra critic forward
    pass for ``q_pred``) when diagnostics are off.
    """

    enabled = False
    alerts: list[Alert] = []

    def observe_update(self, critic_loss, mean_q=None,
                       actor_updated=False) -> None:
        pass

    def observe_step(self, step, reward, success, q_pred=None,
                     sigma=None) -> None:
        pass

    def observe_rdper(self, realized_beta, beta, staleness, high_size,
                      low_size) -> None:
        pass

    def observe_intervention(self, kind) -> None:
        pass

    def drain_alerts(self) -> list[Alert]:
        return []

    def summary(self) -> dict[str, Any]:
        return {
            "alerts_total": 0,
            "steps_seen": 0,
            "interventions": {},
            "by_name": {},
        }


#: the shared disabled instance (stateless, safe to share)
NULL_DIAGNOSTICS = NullDiagnostics()


def replay_events(
    records: Iterable[Mapping[str, Any]],
    config: DiagnosticsConfig | None = None,
) -> DiagnosticsEngine:
    """Re-run the detectors over a recorded event stream.

    Lets ``repro doctor`` synthesize health findings for runs that never
    enabled live diagnostics.  Only the signals present in the standard
    ``offline-step``/``online-step``/``intervention`` events are
    available offline (no critic losses, no RDPER pool stats), so the
    replay covers the reward-plateau and intervention-rate detectors;
    live ``alert`` events in the same stream should be preferred when
    present.
    """
    engine = DiagnosticsEngine(config)
    step_index = 0
    for rec in records:
        kind = rec.get("kind")
        if kind == "intervention":
            engine.observe_intervention(str(rec.get("intervention", "?")))
        elif kind in ("online-step", "offline-step"):
            # online-step events carry resilience evidence inline
            attempts = rec.get("attempts")
            if isinstance(attempts, int) and attempts > 1:
                for _ in range(attempts - 1):
                    engine.observe_intervention("retry")
            if rec.get("fallback"):
                engine.observe_intervention("fallback")
            faults = rec.get("faults") or ()
            if "watchdog-abort" in faults:
                engine.observe_intervention("watchdog-abort")
            engine.observe_step(
                step=int(rec.get("step", rec.get("iteration", step_index))),
                reward=float(rec.get("reward", 0.0)),
                success=bool(rec.get("success", True)),
            )
            step_index += 1
    return engine
