"""Cross-process event bus: per-worker JSONL streams + merged timeline.

``--jobs N`` engine runs execute sessions in separate processes; each
worker's events (steps, heartbeat summaries, diagnostics alerts,
metrics-registry snapshots) would otherwise vanish with the process.
The bus gives every worker its *own* append-only JSONL file under a
shared directory — no cross-process locking, no interleaved torn lines
— and :func:`merge_timeline` folds them into one ordered
``timeline.jsonl`` per run once the fleet drains.

Record envelope (written by :class:`BusWriter` around the usual event
fields)::

    {"kind": ..., "ts": <unix time>, "source": "task-0003", "seq": 17, ...}

``(ts, source, seq)`` is the merge sort key: global wall-clock order
first, with the per-source monotone ``seq`` breaking ties so each
source's records never reorder relative to themselves.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterator

from ..utils.logging import TuningLogger

__all__ = [
    "BusWriter",
    "iter_jsonl_lenient",
    "read_jsonl_lenient",
    "merge_timeline",
    "TIMELINE_NAME",
]

#: filename of the merged per-run timeline inside a bus directory
TIMELINE_NAME = "timeline.jsonl"


def iter_jsonl_lenient(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield JSON objects from a JSONL file, tolerating a truncated
    final line (a writer killed mid-append must not poison readers)."""
    path = Path(path)
    if not path.is_file():
        return
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail or partial flush
            if isinstance(rec, dict):
                yield rec


def read_jsonl_lenient(path: str | Path) -> list[dict[str, Any]]:
    """Materialized :func:`iter_jsonl_lenient`."""
    return list(iter_jsonl_lenient(path))


class BusWriter(TuningLogger):
    """A :class:`TuningLogger` that appends enveloped events to this
    source's stream file (``<root>/<source>.jsonl``).

    One writer per process/source; records carry a monotone ``seq`` so
    the merged timeline can prove losslessness (``seq`` values per
    source form a gap-free range).

    ``trace_id`` is the run's propagatable trace context: when set, every
    envelope carries it, so a merged timeline from a ``--jobs N`` grid can
    be correlated with the stitched span trace of the same run.
    """

    def __init__(
        self, root: str | Path, source: str, trace_id: str | None = None
    ):
        self.root = Path(root)
        self.source = str(source)
        self.trace_id = trace_id
        self.path = self.root / f"{self.source}.jsonl"
        self._seq = 0
        self._fh = None

    def _ensure_open(self):
        if self._fh is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def event(self, kind: str, **fields: Any) -> None:
        record = {
            "kind": kind,
            "ts": time.time(),
            "source": self.source,
            "seq": self._seq,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        self._seq += 1
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        fh = self._ensure_open()
        fh.write(json.dumps(record, default=str) + "\n")
        fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def merge_timeline(
    root: str | Path, out: str | Path | None = None
) -> Path:
    """Merge every ``*.jsonl`` source stream under ``root`` into one
    ordered timeline file and return its path.

    Ordering is ``(ts, source, seq)``: wall-clock first, then source
    name, then the per-source sequence number — deterministic, and
    per-source order is always preserved.  Records that tie on all three
    (e.g. two writers that shared a source name) keep their read order —
    the sort key is made total by appending the read index, so the output
    never depends on ``list.sort`` internals.  Re-running overwrites the
    previous timeline (it is derived data).
    """
    root = Path(root)
    out_path = Path(out) if out is not None else root / TIMELINE_NAME
    records: list[dict[str, Any]] = []
    for path in sorted(root.glob("*.jsonl")):
        if path == out_path:
            continue
        for rec in iter_jsonl_lenient(path):
            records.append(rec)
    order = sorted(
        range(len(records)),
        key=lambda i: (
            float(records[i].get("ts", 0.0)),
            str(records[i].get("source", "")),
            int(records[i].get("seq", 0)),
            i,
        ),
    )
    records = [records[i] for i in order]
    tmp = out_path.with_name(out_path.name + ".tmp")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with tmp.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, default=str) + "\n")
    tmp.replace(out_path)
    return out_path
