"""Run provenance: who ran what, with which code, seeds, and budget.

A :class:`RunManifest` is written next to a run's results so any number
in a report can be traced back to the exact code revision, seed,
hyper-parameters, and cluster spec that produced it — and to where the
wall-clock went (filled from the tracer at finish time).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

__all__ = ["RunManifest", "git_sha", "describe_hyper_params"]


def git_sha(cwd: str | Path | None = None) -> str | None:
    """Current git commit SHA, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config objects to JSON-safe values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    if hasattr(value, "tolist"):  # numpy arrays
        return value.tolist()
    return repr(value)


def describe_hyper_params(obj: Any) -> dict[str, Any]:
    """Dataclass / dict / attribute bag -> plain JSON-safe dict."""
    if obj is None:
        return {}
    out = _jsonable(obj)
    return out if isinstance(out, dict) else {"value": out}


class RunManifest:
    """Provenance record for one tuning run (offline, online, or both)."""

    def __init__(
        self,
        kind: str = "run",
        seed: int | None = None,
        workload: str | None = None,
        dataset: str | None = None,
    ):
        self.kind = kind
        self.seed = seed
        self.workload = workload
        self.dataset = dataset
        self.created_at = time.time()
        self.finished_at: float | None = None
        # Wall timestamps (created_at/finished_at) are for display and
        # correlation only; durations come from the monotonic clock so a
        # system-clock step (NTP slew, suspend) cannot skew elapsed_s
        # negative or wildly long.
        self._created_perf = time.perf_counter()
        self._elapsed_s: float | None = None
        self.run_id = f"{int(self.created_at * 1e3):x}-{os.getpid():x}"
        # Provenance of the *code*, not of wherever the run was launched
        # from: resolve the SHA against this package's checkout.
        self.git_sha = git_sha(cwd=Path(__file__).resolve().parent)
        if self.git_sha is None:
            self.git_sha = git_sha()
        self.python = sys.version.split()[0]
        self.platform = platform.platform()
        self.hyper_parameters: dict[str, Any] = {}
        self.cluster: dict[str, Any] = {}
        self.wall_clock: dict[str, Any] = {}
        self.stages: list[dict[str, Any]] = []
        self.extra: dict[str, Any] = {}

    # ---------------------------------------------------------- recording

    def record_hyper_params(self, hp: Any) -> None:
        self.hyper_parameters.update(describe_hyper_params(hp))

    def record_cluster(self, cluster: Any) -> None:
        self.cluster = describe_hyper_params(cluster)

    def record_stage(self, name: str, **fields: Any) -> None:
        """Append a pipeline-stage entry (offline-train, online-tune...)."""
        self.stages.append({"stage": name, **_jsonable(fields)})

    def record_wall_clock(self, breakdown: dict[str, Any]) -> None:
        """Merge a {span-name: {count, total_s}} breakdown (tracer.totals)."""
        self.wall_clock.update(_jsonable(breakdown))

    def finish(self) -> None:
        self.finished_at = time.time()
        self._elapsed_s = time.perf_counter() - self._created_perf

    @property
    def elapsed_s(self) -> float:
        if self._elapsed_s is not None:
            return self._elapsed_s
        return time.perf_counter() - self._created_perf

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "seed": self.seed,
            "workload": self.workload,
            "dataset": self.dataset,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "elapsed_s": self.elapsed_s,
            "hyper_parameters": self.hyper_parameters,
            "cluster": self.cluster,
            "wall_clock": self.wall_clock,
            "stages": self.stages,
            "extra": _jsonable(self.extra),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> None:
        if self.finished_at is None:
            self.finish()
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        manifest = cls(
            kind=data.get("kind", "run"),
            seed=data.get("seed"),
            workload=data.get("workload"),
            dataset=data.get("dataset"),
        )
        manifest.run_id = data.get("run_id", manifest.run_id)
        manifest.git_sha = data.get("git_sha")
        manifest.created_at = data.get("created_at", manifest.created_at)
        manifest.finished_at = data.get("finished_at")
        # A loaded manifest reports the duration it was saved with; its
        # own monotonic clock has no relation to the recorded run.
        manifest._elapsed_s = data.get("elapsed_s")
        manifest.hyper_parameters = data.get("hyper_parameters", {})
        manifest.cluster = data.get("cluster", {})
        manifest.wall_clock = data.get("wall_clock", {})
        manifest.stages = data.get("stages", [])
        manifest.extra = data.get("extra", {})
        return manifest

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )
