"""Cross-process trace stitching: worker traces → one causal timeline.

A ``--jobs N`` engine run records spans in N+1 processes: the parent's
stitch tracer mirrors each task as an ``engine.task`` span with a stable
``ref`` (``task-0003``), and each worker saves its own trace whose roots
carry ``parent_ref: "task-0003"`` plus the grid's shared ``trace_id``.
:func:`stitch_traces` re-joins them: worker roots are grafted under the
parent-side span naming them, and the whole forest is exported as one
Chrome/Perfetto ``trace_event`` file in which every process keeps its real
``pid``/``tid`` row.

The stitched document also computes the **critical path** — the slowest
causal chain from the top-level root to a leaf, chosen by maximum end
time at every level.  That chain is what bounds the grid's wall-clock,
and is the quantity a tuning-as-a-service scheduler would pack against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.tracing import load_trace

__all__ = ["STITCH_SCHEMA", "StitchResult", "stitch_traces", "write_chrome"]

STITCH_SCHEMA = "stitched-trace-v1"

#: subdirectory of a bus dir where per-process trace files live (kept out
#: of the bus root so ``merge_timeline`` never sweeps them into the event
#: timeline)
TRACES_SUBDIR = "traces"


@dataclass
class StitchResult:
    """Outcome of stitching one run's trace files."""

    roots: list[dict] = field(default_factory=list)
    spans: int = 0
    trace_ids: list[str] = field(default_factory=list)
    files: list[Path] = field(default_factory=list)
    unresolved_parents: int = 0
    critical_path: list[dict] = field(default_factory=list)

    @property
    def trace_id(self) -> str:
        """The run's trace id, or ``"mixed"`` if inputs disagree."""
        if len(self.trace_ids) == 1:
            return self.trace_ids[0]
        return "mixed" if self.trace_ids else ""

    def critical_path_names(self) -> list[str]:
        return [rec.get("name", "?") for rec in self.critical_path]


def _trace_files(inputs: str | Path | Iterable[str | Path]) -> list[Path]:
    if isinstance(inputs, (str, Path)):
        root = Path(inputs)
        if root.is_dir():
            sub = root / TRACES_SUBDIR
            scan = sub if sub.is_dir() else root
            return sorted(scan.glob("*.trace.jsonl")) or sorted(
                scan.glob("*.jsonl")
            )
        return [root]
    return [Path(p) for p in inputs]


def _end(rec: dict) -> float:
    return float(rec.get("ts", 0.0)) + float(rec.get("duration_s", 0.0))


def stitch_traces(
    inputs: str | Path | Iterable[str | Path],
) -> StitchResult:
    """Merge trace JSONL files into one forest with cross-file links.

    ``inputs`` may be a run/bus directory (its ``traces/`` subdir, or the
    directory itself, is scanned for ``*.trace.jsonl``) or an explicit
    list of files.  Roots whose ``parent_ref`` resolves to a span in any
    file are re-parented under it; the rest stay top-level roots and are
    counted in ``unresolved_parents``.
    """
    files = _trace_files(inputs)
    result = StitchResult(files=files)
    by_ref: dict[str, dict] = {}
    all_roots: list[tuple[dict, str | None]] = []  # (root, parent_ref)
    trace_ids: list[str] = []
    for path in files:
        try:
            roots = load_trace(path)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        for root in roots:
            all_roots.append((root, root.get("parent_ref")))
            stack = [root]
            while stack:
                rec = stack.pop()
                result.spans += 1
                tid = rec.get("trace_id")
                if tid and tid not in trace_ids:
                    trace_ids.append(tid)
                ref = rec.get("ref")
                if ref and ref not in by_ref:
                    by_ref[ref] = rec
                stack.extend(rec.get("children", ()))
    for root, parent_ref in all_roots:
        parent = by_ref.get(parent_ref) if parent_ref else None
        if parent is not None and parent is not root:
            parent.setdefault("children", []).append(root)
            root["stitched"] = True
        else:
            if parent_ref:
                result.unresolved_parents += 1
            result.roots.append(root)
    result.trace_ids = sorted(trace_ids)

    # Critical path: start from the latest-ending top-level root and at
    # every level follow the latest-ending child.  With spans mirrored at
    # real durations this is the chain that bounds the run's wall-clock.
    if result.roots:
        node = max(result.roots, key=_end)
        while node is not None:
            result.critical_path.append(node)
            children = node.get("children") or []
            node = max(children, key=_end) if children else None
    return result


def write_chrome(result: StitchResult, out: str | Path) -> Path:
    """Write a stitched Chrome ``trace_event`` document.

    Every span keeps its recorded ``pid``/``tid``; ``args`` carry the
    stitch context (trace id, ref, parent ref, critical-path flag) so
    Perfetto queries can recover the causal structure.
    """
    critical = {id(rec) for rec in result.critical_path}
    events: list[dict[str, Any]] = []
    pids: dict[int, None] = {}

    def emit(rec: dict, parent_ref: str | None) -> None:
        pid = int(rec.get("pid", 0) or 0)
        pids.setdefault(pid, None)
        args = {k: str(v) for k, v in (rec.get("attrs") or {}).items()}
        args["trace_id"] = str(rec.get("trace_id", ""))
        args["ref"] = str(rec.get("ref", ""))
        if parent_ref:
            args["parent_ref"] = parent_ref
        if id(rec) in critical:
            args["critical"] = "1"
        events.append(
            {
                "name": rec.get("name", "?"),
                "ph": "X",
                "ts": float(rec.get("ts", 0.0)) * 1e6,
                "dur": float(rec.get("duration_s", 0.0)) * 1e6,
                "pid": pid,
                "tid": int(rec.get("tid", 0) or 0),
                "args": args,
            }
        )
        for child in rec.get("children") or []:
            emit(child, str(rec.get("ref", "")) or None)

    for root in result.roots:
        emit(root, None)
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"pid {pid}"},
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": STITCH_SCHEMA,
            "trace_id": result.trace_id,
            "critical_path": result.critical_path_names(),
            "unresolved_parents": result.unresolved_parents,
        },
    }
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc), encoding="utf-8")
    return out_path
