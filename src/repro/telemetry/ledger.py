"""Streaming tuning-cost ledger with counterfactual attribution.

DeepCAT's pitch is *cost*-efficiency, yet a session historically reported a
single scalar (the TCT).  The ledger turns that scalar into an append-only,
schema-versioned JSONL stream that charges every unit of tuning cost to a
typed account:

``evaluation``
    the final (kept) attempt of an online step, or an offline evaluation.
``warmup``
    offline evaluations spent before the agent starts acting.
``retry``
    a burnt attempt plus its backoff delay (mirrors the session's
    ``extra_cost`` accumulation bit-for-bit).
``watchdog_abort``
    a final attempt that the watchdog cut short (charged at the watchdog's
    ``charged_s``).
``fallback``
    a step evaluated under the safety guard's fallback config.
``recommendation``
    actor+Twin-Q wall time for a step.
``task`` / ``cache_saving``
    experiment-engine accounts: per-task compute charged at the parent, and
    the estimated seconds a cache hit avoided (counterfactual).
``screening``
    Twin-Q counterfactual — the estimated evaluation seconds avoided by
    screening the actor's raw recommendation, per the paper's Eq.(1)
    duration model (see :func:`repro.core.twinq.screening_saving`).

Charges are *observations of* cost, counterfactuals are *avoided* cost; they
are stored in one stream, discriminated by ``kind``.

Exactness contract
------------------
``total_tuning_seconds()`` reproduces a session's
``OnlineSession.total_tuning_seconds`` **bit-exactly** for single-member
runs.  IEEE-754 addition is commutative but not associative, so a naive
``sum()`` over entries would drift in the last ulp; instead the reduction
replays the session's own grouping: per step, retries fold onto the final
attempt in write order (mirroring ``extra_cost += ...``), the per-step
costs left-fold in step order, and the grand total is
``evaluation_total + recommendation_total`` — the same shape as
``TuningSession.total_tuning_seconds``.

Like every other telemetry pillar the ledger is a pure observer: a run with
``--ledger`` is bit-identical to one without (enforced by the
``-m determinism`` suite).
"""

from __future__ import annotations

import io
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "LEDGER_SCHEMA",
    "CHARGE_ACCOUNTS",
    "COUNTERFACTUAL_ACCOUNTS",
    "CostLedger",
    "LedgerView",
    "NullLedger",
    "NULL_LEDGER",
    "load_ledger",
    "merge_ledgers",
]

LEDGER_SCHEMA = "tuning-cost-ledger-v1"

#: Accounts that represent real (paid) cost.
CHARGE_ACCOUNTS = (
    "evaluation",
    "warmup",
    "retry",
    "watchdog_abort",
    "fallback",
    "recommendation",
    "task",
)

#: Accounts that represent estimated avoided cost.
COUNTERFACTUAL_ACCOUNTS = ("screening", "cache_saving")

#: Accounts whose charges terminate a step (the kept attempt).  ``retry``
#: charges accumulate onto whichever of these closes the same step.
_FINAL_ACCOUNTS = frozenset({"evaluation", "watchdog_abort", "fallback"})

# Keys owned by the envelope; metadata may not shadow them.
_RESERVED = frozenset(
    {"kind", "account", "amount_s", "seq", "source", "ts", "step", "member", "phase"}
)


def _clean_meta(meta: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in meta.items() if k not in _RESERVED}


class _LedgerTotals:
    """Shared reduction logic over a list of entry dicts.

    Both the live :class:`CostLedger` and the read-back :class:`LedgerView`
    answer the same questions; they differ only in where the entries come
    from.
    """

    entries: list[dict[str, Any]]

    def charges(self) -> list[dict[str, Any]]:
        return [e for e in self.entries if e.get("kind") == "charge"]

    def counterfactuals(self) -> list[dict[str, Any]]:
        return [e for e in self.entries if e.get("kind") == "counterfactual"]

    def totals(self) -> dict[str, dict[str, Any]]:
        """Per-account ``{count, seconds}`` over charge entries."""
        out: dict[str, dict[str, Any]] = {}
        for e in self.charges():
            acc = out.setdefault(str(e["account"]), {"count": 0, "seconds": 0.0})
            acc["count"] += 1
            acc["seconds"] += float(e["amount_s"])
        return out

    def counterfactual_totals(self) -> dict[str, dict[str, Any]]:
        """Per-account ``{count, seconds}`` over counterfactual entries."""
        out: dict[str, dict[str, Any]] = {}
        for e in self.counterfactuals():
            acc = out.setdefault(str(e["account"]), {"count": 0, "seconds": 0.0})
            acc["count"] += 1
            acc["seconds"] += float(e["amount_s"])
        return out

    def total_charged(self) -> float:
        """Plain sum of all charges — display only, not the exact TCT."""
        return sum(float(e["amount_s"]) for e in self.charges())

    @property
    def saved_by_screening(self) -> float:
        return sum(
            float(e["amount_s"])
            for e in self.counterfactuals()
            if e.get("account") == "screening"
        )

    @property
    def cache_savings(self) -> float:
        return sum(
            float(e["amount_s"])
            for e in self.counterfactuals()
            if e.get("account") == "cache_saving"
        )

    def total_tuning_seconds(self, member: int | None = None) -> float:
        """Exact replay of ``TuningSession.total_tuning_seconds``.

        Filters online-phase charges, optionally to one population member.
        Retry charges fold onto their step's final attempt in write order
        (the session's ``extra_cost`` accumulation); per-step costs then
        left-fold in first-appearance order; recommendation charges fold
        separately; the result is ``eval_total + rec_total`` — the same
        association the session itself used, hence bit-equality.

        For multi-member ledgers pass ``member`` to reproduce one member's
        session; without it the members' steps interleave and the total is
        only accurate to float reassociation.
        """

        def keep(e: dict[str, Any]) -> bool:
            if e.get("kind") != "charge" or e.get("phase") != "online":
                return False
            return member is None or e.get("member") == member

        extra: dict[Any, float] = {}
        final: dict[Any, float] = {}
        order: list[Any] = []
        rec_total = 0.0
        for e in self.entries:
            if not keep(e):
                continue
            key = (e.get("member"), e.get("step"))
            account = e.get("account")
            amount = float(e["amount_s"])
            if account == "recommendation":
                rec_total += amount
            elif account == "retry":
                extra[key] = extra.get(key, 0.0) + amount
            elif account in _FINAL_ACCOUNTS:
                if key not in final:
                    order.append(key)
                final[key] = amount
        eval_total = 0.0
        for key in order:
            eval_total += float(final[key] + extra.get(key, 0.0))
        return eval_total + rec_total


class CostLedger(_LedgerTotals):
    """Live, streaming ledger.

    ``path`` may be ``None`` for an in-memory ledger (tests, per-member
    sub-ledgers that get absorbed into a parent).  With a path the file is
    opened lazily on the first entry, a schema header line is written, and
    every entry is appended + flushed immediately so a crashed run leaves a
    readable ledger behind.
    """

    enabled = True

    def __init__(self, path: str | Path | None = None, source: str = "run") -> None:
        self.path = Path(path) if path is not None else None
        self.source = source
        self.entries: list[dict[str, Any]] = []
        self._fh: io.TextIOWrapper | None = None
        self._seq = 0
        self._defer = 0

    # -- recording -----------------------------------------------------

    def charge(
        self,
        account: str,
        amount_s: float,
        *,
        step: int | None = None,
        member: int | None = None,
        phase: str = "online",
        **meta: Any,
    ) -> dict[str, Any]:
        return self._record("charge", account, amount_s, step, member, phase, meta)

    def counterfactual(
        self,
        account: str,
        amount_s: float,
        *,
        step: int | None = None,
        member: int | None = None,
        phase: str = "online",
        **meta: Any,
    ) -> dict[str, Any]:
        return self._record(
            "counterfactual", account, amount_s, step, member, phase, meta
        )

    def _record(
        self,
        kind: str,
        account: str,
        amount_s: float,
        step: int | None,
        member: int | None,
        phase: str,
        meta: dict[str, Any],
    ) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "kind": kind,
            "account": str(account),
            "amount_s": float(amount_s),
            "seq": self._seq,
            "source": self.source,
            "ts": time.time(),
            "phase": phase,
        }
        if step is not None:
            entry["step"] = int(step)
        if member is not None:
            entry["member"] = int(member)
        entry.update(_clean_meta(meta))
        self._seq += 1
        self.entries.append(entry)
        self._write(entry)
        return entry

    def absorb(self, entries: Iterable[dict[str, Any]]) -> int:
        """Re-record entries from another ledger (e.g. a worker's).

        Envelope fields other than ``seq`` are preserved — notably the
        child's ``source`` and ``ts`` — so attribution survives the merge;
        ``seq`` is re-assigned in this ledger's stream.
        """
        n = 0
        for e in entries:
            if e.get("kind") not in ("charge", "counterfactual"):
                continue
            entry = dict(e)
            entry["seq"] = self._seq
            self._seq += 1
            self.entries.append(entry)
            self._write(entry)
            n += 1
        return n

    # -- persistence ---------------------------------------------------

    def _write(self, entry: dict[str, Any]) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            header = {
                "schema": LEDGER_SCHEMA,
                "kind": "ledger-header",
                "source": self.source,
                "ts": time.time(),
                "pid": os.getpid(),
            }
            self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        if not self._defer:
            self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @contextmanager
    def deferred(self):
        """Suspend per-entry flushes; one flush at block exit.

        File content and entry order are unchanged — a deferred run's
        ledger is byte-identical to an undeferred one — only the flush
        syscall cadence is batched (the population emits one flush per
        lockstep round instead of one per member).
        """
        self._defer += 1
        try:
            yield self
        finally:
            self._defer -= 1
            if not self._defer:
                self.flush()


class NullLedger(_LedgerTotals):
    """Disabled ledger: every operation is a no-op."""

    enabled = False
    path = None
    source = "null"

    def __init__(self) -> None:
        self.entries: list[dict[str, Any]] = []

    def charge(self, account: str, amount_s: float, **kwargs: Any) -> dict[str, Any]:
        return {}

    def counterfactual(
        self, account: str, amount_s: float, **kwargs: Any
    ) -> dict[str, Any]:
        return {}

    def absorb(self, entries: Iterable[dict[str, Any]]) -> int:
        return 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    @contextmanager
    def deferred(self):
        yield self


NULL_LEDGER = NullLedger()


class LedgerView(_LedgerTotals):
    """Read-back view over a persisted (or merged) ledger."""

    def __init__(
        self, entries: list[dict[str, Any]], source: str = "?", path: Path | None = None
    ) -> None:
        self.entries = entries
        self.source = source
        self.path = path


def load_ledger(path: str | Path) -> LedgerView:
    """Load a ledger JSONL file, validating the schema header if present.

    Malformed lines are skipped (a crashed writer may leave a torn tail);
    a header carrying a different schema string is an error.
    """
    path = Path(path)
    entries: list[dict[str, Any]] = []
    source = "?"
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("kind") == "ledger-header":
                schema = record.get("schema")
                if schema != LEDGER_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported ledger schema {schema!r} "
                        f"(expected {LEDGER_SCHEMA!r})"
                    )
                source = str(record.get("source", source))
                continue
            if record.get("kind") in ("charge", "counterfactual"):
                entries.append(record)
    return LedgerView(entries, source=source, path=path)


def merge_ledgers(paths: Iterable[str | Path]) -> LedgerView:
    """Concatenate several ledger files into one view (file order)."""
    entries: list[dict[str, Any]] = []
    for p in paths:
        entries.extend(load_ledger(p).entries)
    return LedgerView(entries, source="merged")
