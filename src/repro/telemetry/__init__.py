"""Telemetry: metrics, span tracing, and run provenance.

Three pillars, one carrier object:

* :mod:`repro.telemetry.metrics` — thread-safe counters / gauges /
  histograms with Prometheus-text and JSON exporters;
* :mod:`repro.telemetry.tracing` — hierarchical ``span()`` timing trees
  exportable as JSONL and Chrome ``trace_event``;
* :mod:`repro.telemetry.manifest` — run provenance (seed, git SHA,
  hyper-parameters, cluster spec, wall-clock breakdown);
* :mod:`repro.telemetry.diagnostics` — streaming learning-health
  detectors emitting severity-graded ``alert`` events;
* :mod:`repro.telemetry.bus` — per-worker JSONL event streams merged
  into one ordered timeline across ``--jobs N`` processes;
* :mod:`repro.telemetry.ledger` — streaming tuning-cost ledger with
  typed accounts and Twin-Q counterfactual (avoided-cost) entries;
* :mod:`repro.telemetry.stitch` — cross-process trace stitching into
  one Chrome/Perfetto file with a computed critical path;
* :mod:`repro.telemetry.doctor` — post-mortem diagnosis over a run
  directory (events + manifest + heartbeat);
* :mod:`repro.telemetry.context` — :class:`RunContext` bundling all of
  the above plus the event logger, with a zero-overhead null default.

See ``docs/observability.md`` for the metric/span/event catalog.
"""

from repro.telemetry.bus import (
    BusWriter,
    iter_jsonl_lenient,
    merge_timeline,
    read_jsonl_lenient,
)
from repro.telemetry.context import NULL_CONTEXT, RunContext, ensure_context
from repro.telemetry.diagnostics import (
    NULL_DIAGNOSTICS,
    Alert,
    DiagnosticsConfig,
    DiagnosticsEngine,
    NullDiagnostics,
)
from repro.telemetry.heartbeat import (
    HeartbeatWriter,
    default_stale_after,
    finalize_heartbeat,
    heartbeat_status,
    pid_alive,
    read_heartbeat,
    render_heartbeat,
)
from repro.telemetry.ledger import (
    LEDGER_SCHEMA,
    NULL_LEDGER,
    CostLedger,
    LedgerView,
    NullLedger,
    load_ledger,
    merge_ledgers,
)
from repro.telemetry.manifest import RunManifest, git_sha
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.profiling import NULL_PROFILER, NullProfiler, Profiler
from repro.telemetry.stitch import (
    STITCH_SCHEMA,
    StitchResult,
    stitch_traces,
    write_chrome,
)
from repro.telemetry.tracing import (
    NullTracer,
    Span,
    Tracer,
    load_trace,
    render_span_tree,
)

__all__ = [
    "RunContext",
    "NULL_CONTEXT",
    "ensure_context",
    "RunManifest",
    "git_sha",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "Span",
    "load_trace",
    "render_span_tree",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "HeartbeatWriter",
    "read_heartbeat",
    "render_heartbeat",
    "heartbeat_status",
    "finalize_heartbeat",
    "pid_alive",
    "default_stale_after",
    "Alert",
    "DiagnosticsConfig",
    "DiagnosticsEngine",
    "NullDiagnostics",
    "NULL_DIAGNOSTICS",
    "BusWriter",
    "iter_jsonl_lenient",
    "read_jsonl_lenient",
    "merge_timeline",
    "CostLedger",
    "LedgerView",
    "NullLedger",
    "NULL_LEDGER",
    "LEDGER_SCHEMA",
    "load_ledger",
    "merge_ledgers",
    "StitchResult",
    "STITCH_SCHEMA",
    "stitch_traces",
    "write_chrome",
]
