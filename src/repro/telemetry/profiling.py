"""Deterministic profiling hooks for the tuning pipeline.

A :class:`Profiler` aggregates *phases* — named code regions timed with
``time.perf_counter`` — into per-phase wall time, call counts, and
(optionally) peak allocation deltas.  Unlike the span tracer it builds no
tree and allocates nothing per call beyond a tiny reusable frame, so the
hot paths (simulator evaluations, network forward/backward, TD3 updates,
RDPER sampling, Twin-Q screening, engine task dispatch) can stay
instrumented permanently:

* disabled (the default :data:`NULL_PROFILER`), a phase costs one method
  call returning a shared no-op context manager — the same contract as
  :class:`~repro.telemetry.tracing.NullTracer`;
* enabled, a phase draws **no randomness** and mutates no science state,
  so a profiled run produces bit-identical results to an unprofiled one.

Two optional capture layers ride along:

* **cProfile** — ``Profiler(cprofile=True)`` wraps ``start()``/``stop()``
  around a deterministic-profiler session; :meth:`Profiler.dump_pstats`
  writes the raw ``pstats`` file and :meth:`Profiler.hotspot_table`
  renders a top-N cumulative-time table (the ``--profile`` CLI output).
* **tracemalloc** — ``Profiler(trace_malloc=True)`` tracks the peak
  traced allocation per phase (``tracemalloc.reset_peak`` on entry, peak
  delta on exit) plus the global peak for the run.  Allocation tracking
  distorts wall times, so benchmarks run it in a separate pass.

Most instrumented subsystems reach their profiler through the
:class:`~repro.telemetry.context.RunContext` they already carry
(``ctx.phase("sim.evaluate")``).  ``repro.nn`` has no telemetry plumbing
— networks are pure math — so it uses the module-level *active* profiler
installed by :func:`activate`; :func:`phase` resolves it per call.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
import tracemalloc
from pathlib import Path
from typing import Any

__all__ = [
    "PhaseStat",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "activate",
    "deactivate",
    "active_profiler",
    "phase",
]


class PhaseStat:
    """Aggregate record of one named phase."""

    __slots__ = ("name", "calls", "total_s", "max_s", "alloc_peak_bytes")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.alloc_peak_bytes = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
            "alloc_peak_bytes": self.alloc_peak_bytes,
        }


class _PhaseFrame:
    """Context manager for one phase entry (re-entrant via nesting depth).

    A single frame per (profiler, phase) pair is reused across calls, so
    steady-state profiling allocates nothing.  Nested entries of the same
    phase only time the outermost one — re-entrant totals would otherwise
    double-count.
    """

    __slots__ = ("_profiler", "_stat", "_start", "_depth")

    def __init__(self, profiler: "Profiler", stat: PhaseStat):
        self._profiler = profiler
        self._stat = stat
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "_PhaseFrame":
        self._depth += 1
        if self._depth == 1:
            if self._profiler._malloc_active:
                tracemalloc.reset_peak()
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._depth -= 1
        if self._depth:
            return
        elapsed = time.perf_counter() - self._start
        stat = self._stat
        stat.calls += 1
        stat.total_s += elapsed
        if elapsed > stat.max_s:
            stat.max_s = elapsed
        if self._profiler._malloc_active:
            _, peak = tracemalloc.get_traced_memory()
            if peak > stat.alloc_peak_bytes:
                stat.alloc_peak_bytes = peak


class Profiler:
    """Accumulates phase timings; optionally cProfile and tracemalloc.

    Parameters
    ----------
    cprofile:
        Capture a ``cProfile`` session between :meth:`start` and
        :meth:`stop` (function-level hotspots, dumpable as pstats).
    trace_malloc:
        Track peak traced allocations per phase and globally.  Implies a
        measurable slowdown; never enable it on a timing-critical pass.
    """

    def __init__(self, cprofile: bool = False, trace_malloc: bool = False):
        self._stats: dict[str, PhaseStat] = {}
        self._frames: dict[str, _PhaseFrame] = {}
        self._cprofile = cProfile.Profile() if cprofile else None
        self._trace_malloc = trace_malloc
        self._malloc_active = False
        self._started_tracemalloc = False
        self.global_alloc_peak_bytes = 0
        self._running = False

    # ------------------------------------------------------------- session

    def start(self) -> "Profiler":
        """Begin the optional cProfile / tracemalloc capture layers."""
        if self._running:
            return self
        self._running = True
        if self._trace_malloc:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            self._malloc_active = True
        if self._cprofile is not None:
            self._cprofile.enable()
        return self

    def stop(self) -> "Profiler":
        """End the capture layers (phase timers keep working regardless)."""
        if not self._running:
            return self
        if self._cprofile is not None:
            self._cprofile.disable()
        if self._malloc_active:
            _, peak = tracemalloc.get_traced_memory()
            if peak > self.global_alloc_peak_bytes:
                self.global_alloc_peak_bytes = peak
            self._malloc_active = False
            if self._started_tracemalloc:
                tracemalloc.stop()
                self._started_tracemalloc = False
        self._running = False
        return self

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -------------------------------------------------------------- phases

    def phase(self, name: str) -> _PhaseFrame:
        """Context manager timing the ``name`` region (re-entrant)."""
        frame = self._frames.get(name)
        if frame is None:
            stat = self._stats[name] = PhaseStat(name)
            frame = self._frames[name] = _PhaseFrame(self, stat)
        return frame

    def stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every phase: {name: {calls, total_s, ...}}."""
        return {name: s.to_dict() for name, s in self._stats.items()}

    def report(self, min_total_s: float = 0.0) -> str:
        """Phase table sorted by total time (descending)."""
        rows = sorted(
            self._stats.values(), key=lambda s: s.total_s, reverse=True
        )
        lines = [
            f"{'phase':<28} {'calls':>8} {'total':>10} {'mean':>10} "
            f"{'max':>10} {'alloc-peak':>11}"
        ]
        for s in rows:
            if s.total_s < min_total_s:
                continue
            mean = s.total_s / s.calls if s.calls else 0.0
            alloc = (
                f"{s.alloc_peak_bytes / 1024:.0f}K"
                if s.alloc_peak_bytes
                else "-"
            )
            lines.append(
                f"{s.name:<28} {s.calls:>8} {s.total_s * 1e3:>8.1f}ms "
                f"{mean * 1e3:>8.3f}ms {s.max_s * 1e3:>8.3f}ms {alloc:>11}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------ cProfile

    @property
    def has_cprofile(self) -> bool:
        return self._cprofile is not None

    def dump_pstats(self, path: str | Path) -> Path:
        """Write the raw cProfile stats (loadable with :mod:`pstats`)."""
        if self._cprofile is None:
            raise RuntimeError("profiler was created without cprofile=True")
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        self._cprofile.dump_stats(str(path))
        return path

    def hotspot_table(self, top_n: int = 15) -> str:
        """Top-N functions by cumulative time from the cProfile capture."""
        if self._cprofile is None:
            raise RuntimeError("profiler was created without cprofile=True")
        buf = io.StringIO()
        stats = pstats.Stats(self._cprofile, stream=buf)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top_n)
        return buf.getvalue()


# ------------------------------------------------------------- null object


class _NullPhase:
    """Reusable no-op phase: the cost of profiling when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """Discards all phases; ``phase()`` returns a shared no-op singleton."""

    __slots__ = ()
    global_alloc_peak_bytes = 0
    has_cprofile = False

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> "NullProfiler":
        return self

    def __enter__(self) -> "NullProfiler":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def stats(self) -> dict[str, dict[str, Any]]:
        return {}

    def report(self, min_total_s: float = 0.0) -> str:
        return ""


NULL_PROFILER = NullProfiler()


# ------------------------------------------------------- active profiler

# The nn layer is deliberately telemetry-free (pure math on arrays), so
# its forward/backward hooks resolve the profiler through this module
# instead of a RunContext.  ``activate`` installs a profiler process-wide;
# the default keeps the hooks on the null fast path.
_ACTIVE: Profiler | NullProfiler = NULL_PROFILER


def activate(profiler: Profiler) -> None:
    """Install ``profiler`` as the process-wide active profiler."""
    global _ACTIVE
    _ACTIVE = profiler


def deactivate() -> None:
    """Restore the null active profiler."""
    global _ACTIVE
    _ACTIVE = NULL_PROFILER


def active_profiler() -> Profiler | NullProfiler:
    return _ACTIVE


def phase(name: str):
    """Phase frame on the active profiler (used by RunContext-free code)."""
    return _ACTIVE.phase(name)
