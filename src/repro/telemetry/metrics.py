"""Process-wide metrics: counters, gauges, histograms, and exporters.

A :class:`MetricsRegistry` is a thread-safe bag of named instruments.
Instruments are get-or-create — asking twice for the same (name, labels)
pair returns the same object — so hot paths can resolve a handle once
and update it lock-cheap afterwards.  Two export formats:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (histograms render as summaries with quantiles);
* :meth:`MetricsRegistry.to_json` — a plain dict for programmatic use.

The ``Null*`` variants back the disabled-telemetry fast path: every
mutator is a no-op, so instrumented code never branches on "is
telemetry on?".
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_REGISTRY",
]

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self._value}

    def state(self) -> dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Counts from independent processes add."""
        with self._lock:
            self._value += float(state["value"])


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self._value}

    def state(self) -> dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """A gauge is "the latest value"; the incoming one wins."""
        with self._lock:
            self._value = float(state["value"])


class Histogram:
    """Streaming distribution with exact count/sum/min/max and quantile
    estimates from a bounded reservoir sample (Vitter's algorithm R).

    The reservoir bounds memory on unbounded streams; below
    ``reservoir_size`` observations the quantiles are exact.
    """

    kind = "histogram"

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self, name: str, labels: LabelPairs = (), reservoir_size: int = 4096
    ):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.labels = labels
        self._reservoir_size = reservoir_size
        self._reservoir: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()
        # Deterministic LCG for reservoir replacement — avoids the
        # (banned-in-workflow, seed-sensitive) global random module.
        self._rand_state = 0x9E3779B9

    def _next_rand(self, bound: int) -> int:
        self._rand_state = (self._rand_state * 6364136223846793005 + 1) % (
            1 << 64
        )
        return (self._rand_state >> 33) % bound

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._next_rand(self._count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        with self._lock:
            if not self._reservoir:
                return 0.0
            data = sorted(self._reservoir)
        idx = min(int(q * len(data)), len(data) - 1)
        return data[idx]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
            "quantiles": {
                str(q): self.quantile(q) for q in self.DEFAULT_QUANTILES
            },
        }

    def state(self) -> dict[str, Any]:
        """Mergeable (picklable) state, reservoir included."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "reservoir": list(self._reservoir),
            }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Combine a sibling histogram's state into this one.

        Count/sum/min/max merge exactly.  The combined reservoir is the
        concatenation truncated to capacity — deterministic, and an
        unbiased-enough pooled sample for the quantile estimates (both
        inputs are themselves uniform samples of their streams).
        """
        with self._lock:
            self._count += int(state["count"])
            self._sum += float(state["sum"])
            if state["count"]:
                self._min = min(self._min, float(state["min"]))
                self._max = max(self._max, float(state["max"]))
            merged = self._reservoir + [float(v) for v in state["reservoir"]]
            self._reservoir = merged[: self._reservoir_size]


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, LabelPairs], Any] = {}
        self._help: dict[str, str] = {}

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[2], **kwargs)
                self._metrics[key] = metric
                if help:
                    self._help[name] = help
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        reservoir_size: int = 4096,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, reservoir_size=reservoir_size
        )

    def __iter__(self) -> Iterable:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        with self._lock:
            return sorted({name for _, name, _ in self._metrics})

    # ------------------------------------------------------- merge support

    def state(self) -> dict[str, Any]:
        """Picklable snapshot of every instrument, for cross-process use.

        A worker (e.g. a ``ProcessPoolExecutor`` task) records into its
        own registry, returns ``registry.state()`` with its result, and
        the parent folds it in via :meth:`merge` — counters add, gauges
        take the incoming value, histograms pool their reservoirs.
        """
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda i: i[0])
            help_map = dict(self._help)
        return {
            "metrics": [
                {
                    "kind": kind,
                    "name": name,
                    "labels": list(labels),
                    "help": help_map.get(name, ""),
                    "state": metric.state(),
                }
                for (kind, name, labels), metric in items
            ],
        }

    def merge(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` snapshot from another process in."""
        for rec in state["metrics"]:
            labels = {k: v for k, v in rec["labels"]}
            kind = rec["kind"]
            if kind == "counter":
                metric = self.counter(rec["name"], help=rec["help"],
                                      labels=labels)
            elif kind == "gauge":
                metric = self.gauge(rec["name"], help=rec["help"],
                                    labels=labels)
            elif kind == "histogram":
                metric = self.histogram(rec["name"], help=rec["help"],
                                        labels=labels)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            metric.merge_state(rec["state"])

    # ---------------------------------------------------------- exporters

    def to_json(self) -> dict[str, Any]:
        """{name: {kind, help, series: [{labels, ...snapshot}]}}."""
        out: dict[str, Any] = {}
        with self._lock:
            items = list(self._metrics.items())
        for (kind, name, labels), metric in sorted(items, key=lambda i: i[0]):
            entry = out.setdefault(
                name,
                {"kind": kind, "help": self._help.get(name, ""), "series": []},
            )
            entry["series"].append(
                {"labels": dict(labels), **metric.snapshot()}
            )
        return out

    def to_json_text(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format.

        Histograms are rendered as Prometheus *summaries* (quantile
        series plus ``_sum``/``_count``) — the natural mapping for
        client-side quantile estimates.
        """
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda i: i[0])
        lines: list[str] = []
        seen_header: set[str] = set()
        for (kind, name, labels), metric in items:
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                prom_type = "summary" if kind == "histogram" else kind
                lines.append(f"# TYPE {name} {prom_type}")
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_render_labels(labels)} {metric.value:g}"
                )
            else:
                snap = metric.snapshot()
                for q, v in snap["quantiles"].items():
                    qlabels = labels + (("quantile", q),)
                    lines.append(f"{name}{_render_labels(qlabels)} {v:g}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {snap['sum']:g}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {snap['count']}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------- null objects


class NullCounter:
    """No-op counter for the disabled-telemetry fast path."""

    kind = "counter"
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"value": 0.0}


class NullGauge:
    kind = "gauge"
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"value": 0.0}


class NullHistogram:
    kind = "histogram"
    name = ""
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"count": 0, "sum": 0.0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry whose instruments all discard their updates.

    Shares the :class:`MetricsRegistry` surface so instrumented code
    resolves handles unconditionally; every handle is a shared no-op
    singleton, making the disabled path allocation-free.
    """

    def counter(self, name, help="", labels=None) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name, help="", labels=None) -> NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name, help="", labels=None, reservoir_size=4096
    ) -> NullHistogram:
        return _NULL_HISTOGRAM

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def names(self) -> list[str]:
        return []

    def state(self) -> dict[str, Any]:
        return {"metrics": []}

    def merge(self, state: dict[str, Any]) -> None:
        pass

    def to_json(self) -> dict[str, Any]:
        return {}

    def to_json_text(self, indent: int = 2) -> str:
        return "{}"

    def to_prometheus_text(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
