"""Command-line interface.

Subcommands::

    python -m repro.cli train   --workload TS --dataset D1 --iterations 1500 \
                                --model model.npz
    python -m repro.cli tune    --workload TS --dataset D1 --model model.npz \
                                --steps 5
    python -m repro.cli evaluate --workload TS --dataset D1 [--set k=v ...]
    python -m repro.cli bench-report --scale quick

``train`` runs the offline stage and saves the model; ``tune`` loads it
and serves an online tuning request; ``evaluate`` runs a single
configuration on the simulator (the HiBench-equivalent one-off run);
``bench-report`` regenerates EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
from pathlib import Path

import numpy as np

from repro.baselines.cdbtune import CDBTune
from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
from repro.core.deepcat import DeepCAT
from repro.core.persistence import load_tuner, save_tuner
from repro.factory import make_env
from repro.faults import PROFILES

__all__ = ["main", "build_parser"]

_CLUSTERS = {"cluster-a": CLUSTER_A, "cluster-b": CLUSTER_B}

#: conventional exit status for "terminated by SIGINT"
_INTERRUPTED_RC = 130

#: the committed regression-gate baseline (see tools/bench_baseline.py)
BASELINE_BENCH_PATH = "benchmarks/baselines/BENCH_baseline.json"


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt for the wrapped block.

    Long-running commands get one graceful-shutdown path for Ctrl-C and
    ``kill``: flush telemetry, write the final checkpoint, exit 130.
    Restores the previous handler on exit; a no-op off the main thread
    (where ``signal.signal`` is unavailable).
    """

    def handler(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, handler)
    except ValueError:
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeepCAT reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", default="TS",
                       choices=("WC", "TS", "PR", "KM",
                                "BAY", "AGG", "JOIN"))
        p.add_argument("--dataset", default="D1",
                       choices=("D1", "D2", "D3"))
        p.add_argument("--cluster", default="cluster-a",
                       choices=sorted(_CLUSTERS))
        p.add_argument("--seed", type=int, default=0)

    def telemetry_flags(p):
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write a JSONL span trace here (plus a Chrome "
                 "trace_event file next to it, suffix .chrome.json)",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="write the metrics dump here (.json => JSON, anything "
                 "else => Prometheus text format)",
        )
        p.add_argument(
            "--manifest", default=None, metavar="PATH",
            help="write the run manifest (seed, git SHA, hyper-params, "
                 "wall-clock breakdown) here",
        )
        p.add_argument(
            "--events", default=None, metavar="PATH",
            help="append structured JSONL events (offline-step, "
                 "online-step, sim-stage, ...) here",
        )
        p.add_argument(
            "--ledger", default=None, metavar="PATH",
            help="stream a typed tuning-cost ledger (JSONL) here: "
                 "evaluation/warmup/retry/watchdog_abort/fallback/"
                 "recommendation charges plus Twin-Q counterfactual "
                 "savings; inspect with 'repro explain'",
        )

    def run_flags(p):
        """Profiling/heartbeat flags for the long-running run commands."""
        p.add_argument(
            "--profile", action="store_true",
            help="profile the run: per-phase timing report plus a "
                 "cProfile capture (pstats dump + hotspot table)",
        )
        p.add_argument(
            "--profile-out", default=None, metavar="PATH",
            help="where to write the pstats dump (default: "
                 "profile.pstats; implies --profile)",
        )
        p.add_argument(
            "--heartbeat", default=None, metavar="PATH",
            help="overwrite a small JSON progress document here every "
                 "step (readable live via 'repro telemetry watch')",
        )
        p.add_argument(
            "--diagnostics", action="store_true",
            help="run the learning-health detectors (Q-overestimation, "
                 "critic divergence, reward plateau, RDPER pool health, "
                 "exploration collapse, intervention rate); alerts go to "
                 "--events and the end-of-run summary. Pure observers: "
                 "science outputs are bit-identical either way",
        )

    p_train = sub.add_parser("train", help="offline-train a tuner")
    common(p_train)
    telemetry_flags(p_train)
    run_flags(p_train)
    p_train.add_argument("--tuner", default="deepcat",
                         choices=("deepcat", "cdbtune"))
    p_train.add_argument("--iterations", type=int, default=1500)
    p_train.add_argument("--model", required=True,
                         help="output .npz path")

    p_tune = sub.add_parser("tune", help="serve an online tuning request")
    common(p_tune)
    telemetry_flags(p_tune)
    run_flags(p_tune)
    p_tune.add_argument("--model", default=None,
                        help="trained .npz path (required unless --resume)")
    p_tune.add_argument("--steps", type=int, default=5)
    p_tune.add_argument("--time-budget", type=float, default=None,
                        help="total tuning cost constraint in seconds")
    p_tune.add_argument(
        "--fault-profile", default="none", choices=sorted(PROFILES),
        help="chaos preset injected into evaluations (default: none)",
    )
    p_tune.add_argument(
        "--no-resilience", action="store_true",
        help="disable retry/watchdog/safety-guard even under faults",
    )
    p_tune.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="snapshot the session here for crash recovery",
    )
    p_tune.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot cadence in steps (default: every step)",
    )
    p_tune.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="resume a killed session from its checkpoint; --steps is "
             "the TOTAL step count (already-completed steps are kept)",
    )
    p_tune.add_argument(
        "--no-twin-q", action="store_true",
        help="disable the Twin-Q Optimizer screening for this session "
             "(the model's training is unchanged)",
    )
    p_tune.add_argument(
        "--q-threshold", type=float, default=None, metavar="Q",
        help="override the Twin-Q acceptance threshold Q_th for this "
             "session",
    )
    p_tune.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="serve N independent sessions in one lockstep population "
             "(member i uses the i-th seed derived from --seed); "
             "bit-identical to N sequential runs, much faster",
    )
    p_tune.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="step the population across K worker processes over shared "
             "memory (requires --population or a population checkpoint); "
             "results are bit-identical to --shards 1",
    )
    p_tune.add_argument(
        "--blas-threads", type=int, default=1, metavar="T",
        help="BLAS threads per shard worker (default: 1 — process-level "
             "parallelism wants single-threaded math kernels)",
    )

    p_eval = sub.add_parser(
        "evaluate", help="run one configuration on the simulator"
    )
    common(p_eval)
    p_eval.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a parameter (repeatable)",
    )

    p_rep = sub.add_parser(
        "bench-report", aliases=["report"], help="regenerate EXPERIMENTS.md"
    )
    p_rep.add_argument("--scale", default="quick",
                       choices=("quick", "standard", "full"))
    p_rep.add_argument("--output", default="EXPERIMENTS.md")
    telemetry_flags(p_rep)
    from repro.experiments.report import add_engine_arguments

    add_engine_arguments(p_rep)

    p_corpus = sub.add_parser(
        "corpus", help="generate an offline sample corpus (.npz)"
    )
    common(p_corpus)
    p_corpus.add_argument("--samples", type=int, default=500)
    p_corpus.add_argument("--sampler", default="uniform",
                          choices=("uniform", "lhs"))
    p_corpus.add_argument("--output", required=True, help="output .npz path")

    p_tel = sub.add_parser(
        "telemetry", help="inspect telemetry artifacts from a tuned run"
    )
    p_tel.add_argument(
        "action", choices=("summary", "dump", "watch", "top", "stitch"),
        help="summary: human-readable cost breakdown; dump: normalized "
             "JSON of the artifact; watch: tail a live heartbeat file; "
             "top: fleet dashboard over many heartbeats (files or "
             "directories); stitch: merge a grid's worker traces into "
             "one Chrome/Perfetto file with the critical path",
    )
    p_tel.add_argument(
        "path", nargs="+",
        help="a trace .jsonl, a metrics .prom/.json dump, a run "
             "manifest .json, an events .jsonl, or (watch/top) "
             "heartbeat files — top also accepts directories to scan; "
             "stitch takes a bus directory or trace .jsonl files",
    )
    p_tel.add_argument(
        "--out", default=None, metavar="PATH",
        help="stitch: where to write the merged Chrome trace (default: "
             "<bus-dir>/stitched.chrome.json)",
    )
    p_tel.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide spans shorter than this in the trace summary",
    )
    p_tel.add_argument(
        "--follow", action="store_true",
        help="watch: keep re-rendering until interrupted (default: "
             "print the current heartbeat once)",
    )
    p_tel.add_argument(
        "--once", action="store_true",
        help="top: render the dashboard once and exit (default: "
             "refresh until interrupted)",
    )
    p_tel.add_argument(
        "--interval", type=float, default=2.0,
        help="watch --follow / top: poll cadence in seconds",
    )
    p_tel.add_argument(
        "--stale-after", type=float, default=None, metavar="SECONDS",
        help="watch/top: mark a session STALLED when its heartbeat file "
             "is older than this (default: 3x the session's mean step "
             "interval, floor 10s)",
    )
    p_tel.add_argument(
        "--fail-on-stall", action="store_true",
        help="watch/top: exit with status 3 when a session is STALLED "
             "or CRASHED",
    )

    p_doc = sub.add_parser(
        "doctor", help="post-mortem diagnosis of a run's artifacts"
    )
    p_doc.add_argument(
        "path",
        help="a run directory (events/timeline + manifest + heartbeat) "
             "or a single events .jsonl file",
    )
    p_doc.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable diagnosis document",
    )
    p_doc.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N highest-ranked findings",
    )
    p_doc.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit with status 4 when any warning/critical finding "
             "survives ranking (CI gate mode)",
    )

    p_exp = sub.add_parser(
        "explain",
        help="cost breakdown of a run from its tuning-cost ledger",
    )
    p_exp.add_argument(
        "path", nargs="+",
        help="ledger .jsonl file(s), or a run/bus directory containing "
             "a ledgers/ subdirectory; multiple files are merged "
             "(--compare takes exactly two)",
    )
    p_exp.add_argument(
        "--compare", action="store_true",
        help="diff two ledgers account-by-account instead of "
             "summarizing one",
    )
    p_exp.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="show the K most expensive charge entries (default: 5)",
    )
    p_exp.add_argument(
        "--knobs", type=int, default=8, metavar="K",
        help="show the K knobs with the widest cost spread across "
             "evaluated configs (default: 8)",
    )

    p_bench = sub.add_parser(
        "bench", help="performance benchmarks and regression gating"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_action", required=True)

    pb_run = bench_sub.add_parser("run", help="measure and write BENCH_*.json")
    pb_run.add_argument(
        "--out", default=None, metavar="PATH",
        help="output file (default: BENCH_<utc-timestamp>.json)",
    )
    pb_run.add_argument("--repetitions", type=int, default=5)
    pb_run.add_argument("--warmup", type=int, default=1)
    pb_run.add_argument(
        "--kind", default=None, choices=("micro", "macro"),
        help="run only this benchmark kind (default: all)",
    )
    pb_run.add_argument(
        "--only", action="append", default=[], metavar="NAME",
        help="run only the named benchmark (repeatable)",
    )
    pb_run.add_argument(
        "--no-alloc", action="store_true",
        help="skip the tracemalloc allocation pass",
    )
    pb_run.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="run pipeline.population across K shard processes "
             "(default: 1 = single-process lockstep); recorded in the "
             "document's config block",
    )

    pb_cmp = bench_sub.add_parser(
        "compare", help="gate a candidate bench file against a baseline"
    )
    pb_cmp.add_argument("candidate", help="candidate BENCH_*.json")
    pb_cmp.add_argument(
        "baseline", nargs="?", default=BASELINE_BENCH_PATH,
        help=f"baseline bench file (default: {BASELINE_BENCH_PATH})",
    )
    pb_cmp.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="median slowdown that fails the gate (default: 0.25 = 25%%)",
    )
    pb_cmp.add_argument(
        "--check-schema", action="store_true",
        help="only validate both documents against the bench schema; "
             "no timing comparison (CI mode — timings are not asserted "
             "on shared runners)",
    )

    bench_sub.add_parser("list", help="list registered benchmarks")
    return parser


def _coerce(param, raw: str):
    """Parse a CLI override against the parameter's type."""
    from repro.config.parameter import (
        BoolParameter,
        CategoricalParameter,
        FloatParameter,
        IntParameter,
    )

    if isinstance(param, BoolParameter):
        if raw.lower() in ("true", "1", "yes"):
            return True
        if raw.lower() in ("false", "0", "no"):
            return False
        raise ValueError(f"{param.name}: cannot parse boolean {raw!r}")
    if isinstance(param, IntParameter):
        return int(raw)
    if isinstance(param, FloatParameter):
        return float(raw)
    if isinstance(param, CategoricalParameter):
        return raw
    raise TypeError(f"unknown parameter type for {param.name}")


def _run_logger(args, total_steps: int | None):
    """The event logger from --events/--heartbeat (``None`` when unset)."""
    from repro.telemetry import HeartbeatWriter
    from repro.utils.logging import JsonlLogger, TeeLogger

    events = JsonlLogger(args.events) if args.events else None
    heartbeat = (
        HeartbeatWriter(args.heartbeat, total_steps=total_steps)
        if getattr(args, "heartbeat", None)
        else None
    )
    if events and heartbeat:
        return TeeLogger(events, heartbeat)
    return events or heartbeat


def _run_profiler(args):
    """A cProfile-capable profiler when --profile[-out] is set, else None."""
    if getattr(args, "profile", False) or getattr(args, "profile_out", None):
        from repro.telemetry import Profiler

        return Profiler(cprofile=True)
    return None


def _telemetry_context(args, kind: str, total_steps: int | None = None):
    """Build a RunContext from the --trace/--metrics-out/... flags.

    Returns the shared null context when no flag is set, so the default
    CLI path stays on the telemetry-free fast path.  ``--profile`` and
    ``--heartbeat`` ride on the same context: profiling-only runs get a
    plain context (no recording pillars, nothing extra written).
    """
    from repro.telemetry import NULL_CONTEXT, RunContext

    logger = _run_logger(args, total_steps)
    profiler = _run_profiler(args)
    diagnostics = None
    if getattr(args, "diagnostics", False):
        from repro.telemetry import DiagnosticsEngine

        diagnostics = DiagnosticsEngine()
    ledger = None
    if getattr(args, "ledger", None):
        from repro.telemetry import CostLedger

        ledger = CostLedger(args.ledger)
    if not (args.trace or args.metrics_out or args.manifest):
        if (
            logger is None
            and profiler is None
            and diagnostics is None
            and ledger is None
        ):
            return NULL_CONTEXT
        return RunContext(
            logger=logger,
            profiler=profiler,
            diagnostics=diagnostics,
            ledger=ledger,
        )
    ctx = RunContext.recording(
        trace=args.trace,
        metrics=args.metrics_out,
        manifest=args.manifest,
        logger=logger,
        seed=args.seed,
        kind=kind,
        profiler=profiler,
        diagnostics=diagnostics,
        ledger=ledger,
    )
    ctx.manifest.workload = args.workload
    ctx.manifest.dataset = args.dataset
    ctx.manifest.extra["cluster_name"] = args.cluster
    return ctx


@contextlib.contextmanager
def _profiled(ctx, args):
    """Run the wrapped block under the context's profiler, if any.

    On exit (normal or interrupted) the capture stops, the nn-layer hook
    is deactivated, the phase table and cProfile hotspot table print,
    and the pstats dump is written (``--profile-out``, default
    ``profile.pstats``).
    """
    from repro.telemetry import NullProfiler
    from repro.telemetry.profiling import activate, deactivate

    prof = ctx.profiler
    if isinstance(prof, NullProfiler):
        yield
        return
    activate(prof)
    prof.start()
    try:
        yield
    finally:
        prof.stop()
        deactivate()
        print("\nprofile: per-phase wall time")
        print(prof.report())
        if prof.has_cprofile:
            out = args.profile_out or "profile.pstats"
            prof.dump_pstats(out)
            print(f"\nprofile: wrote pstats dump {out}")
            print(prof.hotspot_table(top_n=15))


def _print_diagnostics(ctx) -> None:
    """End-of-run learning-health summary (``--diagnostics`` runs only)."""
    if not ctx.diagnostics.enabled:
        return
    summary = ctx.diagnostics.summary()
    if not summary["alerts_total"]:
        print("diagnostics: healthy (no alerts)")
        return
    print(f"diagnostics: {summary['alerts_total']} alert(s)")
    for name, entry in sorted(summary["by_name"].items()):
        print(
            f"  [{entry['severity']}] {name} x{entry['count']} "
            f"(last step {entry['last_step']})"
        )
    print("diagnostics: run 'repro doctor' on the run artifacts for "
          "ranked remediation hints")


def _apply_twinq_flags(args, tuner) -> None:
    """Apply --no-twin-q / --q-threshold session overrides to a tuner.

    These are plain attributes on the DeepCAT tuner read at tune time;
    agents without Twin-Q (e.g. CDBTune) silently ignore the flags.
    """
    if getattr(args, "no_twin_q", False) and hasattr(tuner, "use_twin_q"):
        tuner.use_twin_q = False
    threshold = getattr(args, "q_threshold", None)
    if threshold is not None and hasattr(tuner, "q_threshold"):
        tuner.q_threshold = float(threshold)


def _print_ledger_summary(ctx) -> None:
    """One-line cost accounting for --ledger runs; details via explain."""
    led = ctx.ledger
    if not led.enabled:
        return
    saved = led.saved_by_screening
    print(
        f"ledger: {len(led.charges())} charge(s) totalling "
        f"{led.total_charged():.1f}s, screening saved {saved:.1f}s"
        + (f" (run 'repro explain {led.path}' for the breakdown)"
           if led.path else "")
    )


def _finish_telemetry(ctx) -> None:
    _print_diagnostics(ctx)
    _print_ledger_summary(ctx)
    written = ctx.save()
    for path in written:
        print(f"telemetry: wrote {path}")


def _finalize_heartbeat(args, status: str) -> None:
    """Stamp the heartbeat's terminal marker so `telemetry top/watch`
    can tell this deliberate exit from a crash (pid gone, no marker)."""
    path = getattr(args, "heartbeat", None)
    if not path:
        return
    from repro.telemetry import finalize_heartbeat

    finalize_heartbeat(path, status)


def _finish_interrupted(ctx, stage: str) -> None:
    """Seal telemetry for a command cut short by SIGINT/SIGTERM.

    The manifest (when recording) is stamped ``interrupted`` so a
    partial run is never mistaken for a complete one.
    """
    if ctx.manifest is not None:
        ctx.manifest.extra["interrupted"] = True
        ctx.manifest.extra["interrupted_stage"] = stage
    _finish_telemetry(ctx)


def _cmd_train(args) -> int:
    env = make_env(args.workload, args.dataset,
                   cluster=_CLUSTERS[args.cluster], seed=args.seed)
    cls = DeepCAT if args.tuner == "deepcat" else CDBTune
    tuner = cls.from_env(env, seed=args.seed)
    print(
        f"offline-training {args.tuner} on {args.workload}-{args.dataset} "
        f"({args.iterations} iterations)..."
    )
    ctx = _telemetry_context(
        args, kind="offline-train", total_steps=args.iterations
    )
    with _sigterm_as_interrupt(), _profiled(ctx, args):
        try:
            log = tuner.train_offline(env, args.iterations, telemetry=ctx)
        except KeyboardInterrupt:
            save_tuner(tuner, args.model)
            print(f"\ninterrupted: saved partially-trained {args.model}")
            _finish_interrupted(ctx, "offline-train")
            _finalize_heartbeat(args, "interrupted")
            return _INTERRUPTED_RC
    save_tuner(tuner, args.model)
    print(
        f"saved {args.model}; best configuration seen offline "
        f"{log.best_duration_s:.1f}s (default {env.default_duration:.1f}s)"
    )
    _finish_telemetry(ctx)
    _finalize_heartbeat(args, "completed")
    return 0


def _print_session(session) -> None:
    for step in session.steps:
        status = "ok" if step.success else "FAILED"
        extras = []
        if step.attempts > 1:
            extras.append(f"{step.attempts} attempts")
        if step.aborted:
            extras.append("watchdog-abort")
        if step.fallback:
            extras.append("fallback")
        if step.faults:
            extras.append("faults: " + ",".join(step.faults))
        suffix = f" [{'; '.join(extras)}]" if extras else ""
        print(
            f"step {step.step + 1}: {step.duration_s:8.1f}s "
            f"(reward {step.reward:+.2f}, {status}){suffix}"
        )
    if any(s.success for s in session.steps):
        print(
            f"best {session.best_duration_s:.1f}s "
            f"({session.speedup_over_default:.2f}x over default), "
            f"total tuning cost {session.total_tuning_seconds:.1f}s"
        )
    else:
        print(
            "no successful step in session; "
            f"total tuning cost {session.total_tuning_seconds:.1f}s"
        )


def _checkpoint_is_population(path) -> bool:
    """Sniff whether a checkpoint file holds a population snapshot."""
    import pickle

    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    return "population_checkpoint_version" in payload


def _tune_population(args) -> int:
    from repro.core.persistence import (
        PopulationCheckpointManager,
        load_population_checkpoint,
    )
    from repro.core.population import PopulationTuner, population_seed_plan
    from repro.core.resilience import ResiliencePolicy

    if args.resume is not None:
        ck = load_population_checkpoint(args.resume)
        tuners, envs, sessions = ck.tuners, ck.envs, ck.sessions
        start_steps, resiliences = ck.next_steps, ck.resiliences
        ckpt_path = args.checkpoint if args.checkpoint else args.resume
        if min(start_steps) >= args.steps:
            print(f"nothing to do: {args.resume} already has "
                  f"{min(start_steps)} step(s) in every session")
            for i, session in enumerate(sessions):
                print(f"--- session {i + 1}/{len(sessions)} ---")
                _print_session(session)
            return 0
        print(
            f"resuming population of {len(tuners)} from {args.resume} "
            f"at step {min(start_steps) + 1}/{args.steps}"
        )
    else:
        if args.population < 1:
            print("tune: --population must be >= 1", file=sys.stderr)
            return 2
        seeds = population_seed_plan(args.seed, args.population)
        tuners = [load_tuner(args.model, seed=s) for s in seeds]
        envs = [
            make_env(args.workload, args.dataset,
                     cluster=_CLUSTERS[args.cluster], seed=1000 + s,
                     fault_profile=args.fault_profile)
            for s in seeds
        ]
        resiliences = [
            ResiliencePolicy.default(seed=s)
            if args.fault_profile != "none" and not args.no_resilience
            else None
            for s in seeds
        ]
        sessions = [None] * len(seeds)
        start_steps = [0] * len(seeds)
        ckpt_path = args.checkpoint
    for tuner in tuners:
        _apply_twinq_flags(args, tuner)
    checkpoint = (
        PopulationCheckpointManager(
            ckpt_path, tuners, envs, resiliences=resiliences,
            every=args.checkpoint_every,
        )
        if ckpt_path
        else None
    )
    shards = getattr(args, "shards", 1)
    if shards < 1:
        print("tune: --shards must be >= 1", file=sys.stderr)
        return 2
    if shards > 1 and getattr(args, "ledger", None):
        print(
            "tune: note: --ledger records only parent-side costs under "
            "--shards (worker telemetry is process-local)",
            file=sys.stderr,
        )
    ctx = _telemetry_context(args, kind="online-tune", total_steps=args.steps)
    with _sigterm_as_interrupt(), _profiled(ctx, args):
        try:
            if shards > 1:
                from repro.parallel import ShardCrash, ShardedPopulation

                population = ShardedPopulation(
                    tuners, envs, shards=shards, telemetry=ctx,
                    resiliences=resiliences, sessions=sessions,
                    start_steps=start_steps,
                    blas_threads=getattr(args, "blas_threads", 1),
                )
                try:
                    results = population.tune(
                        steps=args.steps, time_budget_s=args.time_budget,
                        checkpoint=checkpoint,
                    )
                except ShardCrash as exc:
                    print(f"tune: shard failure: {exc}", file=sys.stderr)
                    if checkpoint is not None and checkpoint.saves:
                        print(
                            f"tune: resume from {checkpoint.path} with "
                            f"--resume {checkpoint.path}",
                            file=sys.stderr,
                        )
                    _finish_interrupted(ctx, "online-tune")
                    _finalize_heartbeat(args, "crashed")
                    return 1
            else:
                population = PopulationTuner.from_deepcat(
                    tuners, envs, telemetry=ctx, resiliences=resiliences,
                    sessions=sessions, start_steps=start_steps,
                )
                results = population.tune(
                    steps=args.steps, time_budget_s=args.time_budget,
                    checkpoint=checkpoint,
                )
        except KeyboardInterrupt:
            print("\ninterrupted", end="")
            if checkpoint is not None:
                print(f": population checkpointed to {checkpoint.path}; "
                      f"resume with --resume {checkpoint.path}", end="")
            print()
            _finish_interrupted(ctx, "online-tune")
            _finalize_heartbeat(args, "interrupted")
            return _INTERRUPTED_RC
    for i, session in enumerate(results):
        print(f"--- session {i + 1}/{len(results)} ---")
        _print_session(session)
    _finish_telemetry(ctx)
    _finalize_heartbeat(args, "completed")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.persistence import CheckpointManager, load_checkpoint
    from repro.core.resilience import ResiliencePolicy

    if args.resume is None and args.model is None:
        print("tune: either --model or --resume is required",
              file=sys.stderr)
        return 2
    if args.resume is not None and _checkpoint_is_population(args.resume):
        return _tune_population(args)
    if args.resume is None and args.population is not None:
        return _tune_population(args)
    if args.resume is not None:
        ckpt = load_checkpoint(args.resume)
        tuner, env = ckpt.tuner, ckpt.env
        session, start_step = ckpt.session, ckpt.next_step
        resilience = ckpt.resilience
        # keep snapshotting into the same file unless redirected
        ckpt_path = args.checkpoint if args.checkpoint else args.resume
        if start_step >= args.steps:
            print(f"nothing to do: {args.resume} already has "
                  f"{start_step} step(s)")
            _print_session(session)
            return 0
        print(
            f"resuming {session.workload}-{session.dataset} from "
            f"{args.resume} at step {start_step + 1}/{args.steps}"
        )
    else:
        tuner = load_tuner(args.model, seed=args.seed)
        env = make_env(args.workload, args.dataset,
                       cluster=_CLUSTERS[args.cluster], seed=1000 + args.seed,
                       fault_profile=args.fault_profile)
        session, start_step = None, 0
        # Resilience rides along with chaos: a fault-free tune keeps the
        # historical single-attempt behaviour unless faults are injected.
        resilience = (
            ResiliencePolicy.default(seed=args.seed)
            if args.fault_profile != "none" and not args.no_resilience
            else None
        )
        ckpt_path = args.checkpoint
    _apply_twinq_flags(args, tuner)
    checkpoint = (
        CheckpointManager(
            ckpt_path, tuner, env, resilience=resilience,
            every=args.checkpoint_every,
        )
        if ckpt_path
        else None
    )
    ctx = _telemetry_context(args, kind="online-tune", total_steps=args.steps)
    with _sigterm_as_interrupt(), _profiled(ctx, args):
        try:
            session = tuner.tune_online(
                env, steps=args.steps, time_budget_s=args.time_budget,
                telemetry=ctx, resilience=resilience, session=session,
                start_step=start_step, checkpoint=checkpoint,
            )
        except KeyboardInterrupt:
            print("\ninterrupted", end="")
            if checkpoint is not None:
                print(f": session checkpointed to {checkpoint.path}; "
                      f"resume with --resume {checkpoint.path}", end="")
            print()
            _finish_interrupted(ctx, "online-tune")
            _finalize_heartbeat(args, "interrupted")
            return _INTERRUPTED_RC
    _print_session(session)
    _finish_telemetry(ctx)
    _finalize_heartbeat(args, "completed")
    return 0


def _cmd_evaluate(args) -> int:
    env = make_env(args.workload, args.dataset,
                   cluster=_CLUSTERS[args.cluster], seed=args.seed)
    config = env.space.defaults()
    for item in args.set:
        if "=" not in item:
            print(f"bad --set {item!r}, expected KEY=VALUE", file=sys.stderr)
            return 2
        key, raw = item.split("=", 1)
        if key not in env.space:
            print(f"unknown parameter {key!r}", file=sys.stderr)
            return 2
        config[key] = _coerce(env.space[key], raw)
    outcome = env.step(env.space.encode(config))
    result = outcome.result
    status = "OK" if result.success else f"FAILED: {result.failure_reason}"
    print(
        f"{args.workload}-{args.dataset} on {args.cluster}: "
        f"{result.duration_s:.1f}s [{status}]"
    )
    from repro.sim.timeline import render_timeline

    print(render_timeline(result))
    return 0


def _report_telemetry_context(args):
    """Like :func:`_telemetry_context` but for the report command.

    ``bench-report`` has no workload/dataset/seed flags, so the manifest
    records only the run kind and scale.
    """
    from repro.telemetry import NULL_CONTEXT, RunContext
    from repro.utils.logging import JsonlLogger

    if not (
        args.trace or args.metrics_out or args.manifest or args.events
        or getattr(args, "ledger", None)
    ):
        return NULL_CONTEXT
    ledger = None
    if getattr(args, "ledger", None):
        from repro.telemetry import CostLedger

        ledger = CostLedger(args.ledger)
    ctx = RunContext.recording(
        trace=args.trace,
        metrics=args.metrics_out,
        manifest=args.manifest,
        logger=JsonlLogger(args.events) if args.events else None,
        seed=0,
        kind="bench-report",
        ledger=ledger,
    )
    ctx.manifest.extra["scale"] = args.scale
    ctx.manifest.extra["jobs"] = args.jobs
    return ctx


def _cmd_bench_report(args) -> int:
    from repro.experiments.engine import (
        EngineTaskError,
        render_failure_report,
    )
    from repro.experiments.report import (
        build_report,
        engine_from_args,
        write_failure_report,
    )

    ctx = _report_telemetry_context(args)
    engine = engine_from_args(args, telemetry=ctx)
    with _sigterm_as_interrupt():
        try:
            report = build_report(args.scale, engine=engine)
        except KeyboardInterrupt:
            print("\ninterrupted: report not written "
                  "(completed sessions stay in the result cache)")
            _finish_interrupted(ctx, "bench-report")
            return _INTERRUPTED_RC
        except EngineTaskError as exc:
            # The grid ran to completion first; everything that
            # succeeded is cached, so a re-run is incremental.
            print(render_failure_report(exc.report), file=sys.stderr)
            print("report: tasks failed permanently; report not written "
                  "(rerun with --lenient to accept partial results)",
                  file=sys.stderr)
            write_failure_report(engine, args.failure_report)
            _finish_telemetry(ctx)
            return 1
    with open(args.output, "w") as fh:
        fh.write(report)
    print(f"wrote {args.output} at scale {args.scale!r}")
    print(f"engine: {engine.stats.summary()}")
    write_failure_report(engine, args.failure_report)
    _finish_telemetry(ctx)
    return 0


def _cmd_corpus(args) -> int:
    import numpy as np

    from repro.data import generate_corpus, save_corpus

    env = make_env(args.workload, args.dataset,
                   cluster=_CLUSTERS[args.cluster], seed=args.seed)
    corpus = generate_corpus(
        env,
        f"{args.workload}-{args.dataset}",
        args.samples,
        np.random.default_rng(args.seed),
        sampler=args.sampler,
    )
    save_corpus(corpus, args.output)
    print(
        f"wrote {args.output}: {len(corpus)} samples, "
        f"{corpus.failure_rate * 100:.1f}% failed, "
        f"best {corpus.best_duration_s:.1f}s"
    )
    return 0


def _classify_artifact(path: str) -> str:
    """Sniff what kind of telemetry artifact a file is.

    Recognizes JSONL span traces, JSONL event logs, run manifests, JSON
    metrics dumps, and Prometheus text; anything unparseable is treated
    as Prometheus text (whose grammar is "anything line-oriented").
    """
    import json as _json

    text = open(path, encoding="utf-8").read()
    if not text.strip():
        return "empty"
    first_line = text.lstrip().split("\n", 1)[0]
    try:
        record = _json.loads(first_line)
    except _json.JSONDecodeError:
        try:
            record = _json.loads(text)
        except _json.JSONDecodeError:
            return "prometheus"
    if isinstance(record, dict):
        if "duration_s" in record and "id" in record:
            return "trace"
        if "kind" in record and "ts" in record:
            return "events"
        if "run_id" in record:
            return "manifest"
        return "metrics-json"
    return "prometheus"


def _read_events_lenient(path: str) -> tuple[list[dict], bool]:
    """Read a JSONL events file, tolerating a truncated final line.

    A crashed run can leave the event being written at the instant of
    death half-flushed; that partial *final* line is dropped (reported
    via the returned flag).  A malformed line anywhere *else* means the
    file is corrupt, which is worth failing loudly over.
    """
    import json as _json

    records: list[dict] = []
    lines = [
        ln for ln in open(path, encoding="utf-8").read().splitlines()
        if ln.strip()
    ]
    truncated = False
    for i, line in enumerate(lines):
        try:
            records.append(_json.loads(line))
        except _json.JSONDecodeError:
            if i == len(lines) - 1:
                truncated = True
                break
            raise ValueError(
                f"{path}: line {i + 1} is not valid JSON (corrupt "
                "events file)"
            ) from None
    return records, truncated


def _cmd_telemetry(args) -> int:
    if args.action == "watch":
        return _cmd_telemetry_watch(args)
    if args.action == "top":
        return _cmd_telemetry_top(args)
    if args.action == "stitch":
        return _cmd_telemetry_stitch(args)
    if len(args.path) > 1:
        print("telemetry: summary/dump take exactly one path",
              file=sys.stderr)
        return 2
    args.path = args.path[0]
    if not os.path.isfile(args.path):
        print(f"{args.path}: no such file", file=sys.stderr)
        return 1
    try:
        return _render_artifact(args)
    except (ValueError, KeyError, OSError) as exc:
        # Truncated traces, half-written JSON, unreadable files: one
        # clear line on stderr, exit 1, no traceback.
        print(f"{args.path}: cannot read artifact: {exc}", file=sys.stderr)
        return 1


def _render_artifact(args) -> int:
    import json as _json

    from repro.telemetry import RunManifest, load_trace, render_span_tree

    kind = _classify_artifact(args.path)
    if kind == "empty":
        print(
            f"{args.path}: empty file (no telemetry was recorded, or "
            "the run died before its first write)",
            file=sys.stderr,
        )
        return 1

    if kind == "trace":
        roots = load_trace(args.path)
        if args.action == "dump":
            print(_json.dumps(roots, indent=2))
            return 0
        n_spans = sum(1 for r in roots for _ in _iter_tree(r))
        print(f"trace: {len(roots)} root span(s), {n_spans} total")
        print(render_span_tree(roots, min_duration_s=args.min_ms / 1e3))
        return 0

    if kind == "events":
        records, truncated = _read_events_lenient(args.path)
        if truncated:
            print(
                f"{args.path}: final line is truncated (crashed run?); "
                "ignoring it",
                file=sys.stderr,
            )
        if not records:
            print(f"{args.path}: no complete events", file=sys.stderr)
            return 1
        if args.action == "dump":
            print(_json.dumps(records, indent=2))
            return 0
        counts: dict[str, int] = {}
        for rec in records:
            k = rec.get("kind", "?")
            counts[k] = counts.get(k, 0) + 1
        span_s = records[-1].get("ts", 0.0) - records[0].get("ts", 0.0)
        print(
            f"events: {len(records)} record(s) over {span_s:.1f}s"
        )
        for k in sorted(counts):
            print(f"  {k:<20} x{counts[k]}")
        return 0

    if kind == "manifest":
        manifest = RunManifest.load(args.path)
        if args.action == "dump":
            print(manifest.to_json())
            return 0
        d = manifest.to_dict()
        print(f"run {d['run_id']} ({d['kind']})")
        for key in ("workload", "dataset", "seed", "git_sha", "python"):
            print(f"  {key:<12} {d[key]}")
        print(f"  {'elapsed_s':<12} {d['elapsed_s']:.2f}")
        if d["wall_clock"]:
            print("  wall-clock breakdown:")
            for name, entry in sorted(d["wall_clock"].items()):
                print(
                    f"    {name:<28} {entry['total_s']:9.3f}s "
                    f"x{int(entry['count'])}"
                )
        for stage in d["stages"]:
            print(f"  stage: {stage}")
        return 0

    if kind == "metrics-json":
        data = _json.loads(open(args.path, encoding="utf-8").read())
        if args.action == "dump":
            print(_json.dumps(data, indent=2, sort_keys=True))
            return 0
        for name, entry in sorted(data.items()):
            for series in entry["series"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in series.get("labels", {}).items()
                )
                value = series.get("value", series.get("sum"))
                print(f"{name}{{{labels}}} = {value}")
        return 0

    # Prometheus text: dump prints it verbatim, summary filters comments.
    text = open(args.path, encoding="utf-8").read()
    if args.action == "dump":
        print(text, end="")
    else:
        for line in text.splitlines():
            if line and not line.startswith("#"):
                print(line)
    return 0


def _watch_render(path: str, stale_after: float | None) -> tuple[str, str]:
    """(rendered line, status) for one heartbeat file.

    Staleness keys off the file's mtime (the writer touches it on every
    step), not the wall-clock stamp inside the document.
    """
    import time as _time

    from repro.telemetry import (
        heartbeat_status,
        pid_alive,
        read_heartbeat,
        render_heartbeat,
    )

    doc = read_heartbeat(path)
    age = max(0.0, _time.time() - os.path.getmtime(path))
    status = heartbeat_status(doc, age, stale_after,
                              alive=pid_alive(doc.get("pid")))
    line = render_heartbeat(doc)
    if status == "stalled":
        line += f"  STALLED (no heartbeat for {age:.0f}s)"
    elif status == "crashed":
        line += (
            f"  CRASHED (pid {doc.get('pid')} is gone, "
            "no terminal marker)"
        )
    return line, status


def _cmd_telemetry_watch(args) -> int:
    import time as _time

    path = args.path[0]

    def render_once() -> tuple[int | None, str]:
        try:
            line, status = _watch_render(path, args.stale_after)
        except ValueError as exc:
            print(f"watch: {exc}", file=sys.stderr)
            return 1, "error"
        print(line, flush=True)
        if status in ("stalled", "crashed") and args.fail_on_stall:
            return 3, status
        return None, status

    rc, _status = render_once()
    if rc is not None:
        return rc
    if not args.follow:
        return 0
    try:
        while True:
            _time.sleep(max(args.interval, 0.1))
            rc, _status = render_once()
            if rc is not None:
                return rc
    except KeyboardInterrupt:
        return 0


def _collect_heartbeats(paths: list[str]) -> list[tuple[str, str]]:
    """Expand files/directories into (display name, heartbeat path).

    Directories are scanned (recursively) for ``*.json`` files that
    parse as heartbeat documents; unreadable candidates are skipped.
    """
    from pathlib import Path as _Path

    from repro.telemetry import read_heartbeat

    found: list[tuple[str, str]] = []
    for raw in paths:
        p = _Path(raw)
        if p.is_dir():
            for candidate in sorted(p.rglob("*.json")):
                if "manifest" in candidate.name:
                    continue
                try:
                    read_heartbeat(candidate)
                except ValueError:
                    continue
                rel = candidate.relative_to(p)
                name = str(rel.parent) if rel.parent != _Path(".") else (
                    candidate.stem
                )
                found.append((name, str(candidate)))
        else:
            found.append((p.stem, str(p)))
    return found


def _render_top(args) -> tuple[str, int]:
    """(dashboard text, count of stalled + crashed sessions)."""
    import time as _time

    from repro.telemetry import heartbeat_status, pid_alive, read_heartbeat

    entries = _collect_heartbeats(args.path)
    header = (
        f"{'SESSION':<18} {'STATE':<8} {'PHASE':<14} {'STEP':<9} "
        f"{'BEST':>8} {'RTY':>4} {'ABT':>4} {'FBK':>4} {'ALRT':>5} "
        f"{'AGE':>6}  LAST ALERT"
    )
    lines = [header]
    stalled = 0
    crashed = 0
    for name, path in entries:
        try:
            doc = read_heartbeat(path)
        except ValueError:
            lines.append(f"{name:<18} {'?':<8} (unreadable heartbeat)")
            continue
        age = max(0.0, _time.time() - os.path.getmtime(path))
        status = heartbeat_status(doc, age, args.stale_after,
                                  alive=pid_alive(doc.get("pid")))
        if status == "stalled":
            stalled += 1
        elif status == "crashed":
            crashed += 1
        total = doc.get("total_steps")
        step = f"{doc.get('step', '?')}/{total}" if total else (
            str(doc.get("step", "?"))
        )
        best = doc.get("best_duration_s")
        resilience = doc.get("resilience") or {}
        alerts = doc.get("alerts") or {}
        active = alerts.get("active") or []
        last_alert = ""
        if active:
            last = active[-1]
            last_alert = f"{last.get('severity', '?')}:{last.get('name', '?')}"
        lines.append(
            f"{name:<18.18} {status.upper():<8} "
            f"{doc.get('phase', '?'):<14} {step:<9} "
            f"{(f'{best:.1f}s' if best is not None else '-'):>8} "
            f"{resilience.get('retries', 0):>4} "
            f"{resilience.get('watchdog_aborts', 0):>4} "
            f"{resilience.get('fallbacks', 0):>4} "
            f"{alerts.get('total', 0):>5} "
            f"{age:>5.0f}s  {last_alert}"
        )
    if not entries:
        lines.append("(no heartbeat files found)")
    summary = (
        f"{len(entries)} session(s), {stalled} stalled, {crashed} crashed"
    )
    return "\n".join(lines) + f"\n{summary}", stalled + crashed


def _cmd_telemetry_top(args) -> int:
    import time as _time

    text, stalled = _render_top(args)
    print(text, flush=True)
    if args.once:
        return 3 if (stalled and args.fail_on_stall) else 0
    if stalled and args.fail_on_stall:
        return 3
    try:
        while True:
            _time.sleep(max(args.interval, 0.1))
            text, stalled = _render_top(args)
            # Clear and repaint so the table stays in place like top(1).
            print("\x1b[2J\x1b[H" + text, flush=True)
            if stalled and args.fail_on_stall:
                return 3
    except KeyboardInterrupt:
        return 0


def _cmd_doctor(args) -> int:
    import json as _json

    from repro.telemetry.doctor import diagnose_run, render_diagnosis

    if not os.path.exists(args.path):
        print(f"doctor: {args.path}: no such file or directory",
              file=sys.stderr)
        return 1
    report = diagnose_run(args.path)
    if args.as_json:
        print(_json.dumps(report, indent=2, default=str))
    else:
        print(render_diagnosis(report, top=args.top), end="")
    if args.fail_on_findings and not report["healthy"]:
        return 4
    return 0


def _cmd_bench(args) -> int:
    import json as _json

    from repro.bench import (
        DEFAULT_THRESHOLD,
        compare_docs,
        iter_benchmarks,
        load_doc,
        render_comparison,
        run_benchmarks,
    )

    if args.bench_action == "list":
        for b in iter_benchmarks():
            print(f"{b.kind:<6} {b.name:<24} x{b.items:<5} {b.description}")
        return 0

    if args.bench_action == "run":
        if args.repetitions < 1:
            print("bench run: --repetitions must be >= 1", file=sys.stderr)
            return 2
        if args.shards < 1:
            print("bench run: --shards must be >= 1", file=sys.stderr)
            return 2
        if args.shards > 1:
            from repro.bench import benches

            benches.set_population_shards(args.shards)
        doc = run_benchmarks(
            names=args.only or None,
            kind=args.kind,
            repetitions=args.repetitions,
            warmup=args.warmup,
            track_alloc=not args.no_alloc,
            progress=lambda b: print(f"bench: {b.name} ...", flush=True),
            extra_config={"shards": args.shards},
        )
        if args.out:
            out = args.out
        else:
            stamp = doc["created_at"].replace(":", "").replace("-", "")
            stamp = stamp.split(".")[0].replace("T", "-")
            out = f"BENCH_{stamp}.json"
        with open(out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2)
            fh.write("\n")
        for r in doc["results"]:
            thr = r["throughput_per_s"]
            print(
                f"{r['name']:<24} median {r['median_s'] * 1e3:9.3f}ms "
                f"(p10 {r['p10_s'] * 1e3:8.3f} / p90 "
                f"{r['p90_s'] * 1e3:8.3f})  {thr:10.1f} items/s"
            )
        print(f"wrote {out} ({len(doc['results'])} benchmark(s))")
        return 0

    # compare
    try:
        candidate = load_doc(args.candidate)
        baseline = load_doc(args.baseline)
    except ValueError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if args.check_schema:
        print(
            f"bench compare: schemas OK "
            f"({len(candidate['results'])} candidate / "
            f"{len(baseline['results'])} baseline result(s))"
        )
        return 0
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    if threshold <= 0:
        print("bench compare: --threshold must be positive", file=sys.stderr)
        return 2
    cmp = compare_docs(candidate, baseline, threshold=threshold)
    print(render_comparison(cmp))
    return 0 if cmp.ok else 1


def _iter_tree(rec):
    yield rec
    for child in rec.get("children", []):
        yield from _iter_tree(child)


def _cmd_telemetry_stitch(args) -> int:
    from repro.telemetry import stitch_traces, write_chrome

    inputs = args.path[0] if len(args.path) == 1 else args.path
    result = stitch_traces(inputs)
    if not result.files:
        print("stitch: no trace files found", file=sys.stderr)
        return 1
    if result.spans == 0:
        print(
            "stitch: trace files contained no spans "
            f"({len(result.files)} file(s) scanned)",
            file=sys.stderr,
        )
        return 1
    if args.out:
        out = args.out
    elif len(args.path) == 1 and os.path.isdir(args.path[0]):
        out = os.path.join(args.path[0], "stitched.chrome.json")
    else:
        out = "stitched.chrome.json"
    write_chrome(result, out)
    print(
        f"stitch: {result.spans} span(s) from {len(result.files)} "
        f"file(s), trace {result.trace_id or '(none)'}"
    )
    if result.unresolved_parents:
        print(
            f"stitch: {result.unresolved_parents} root(s) reference a "
            "parent span not present in the inputs"
        )
    chain = result.critical_path_names()
    if chain:
        total = sum(
            float(r.get("duration_s", 0.0)) for r in result.critical_path
        )
        print(f"critical path ({total:.3f}s): " + " > ".join(chain))
    print(f"stitch: wrote {out}")
    return 0


def _resolve_ledger(path: str):
    """A LedgerView for a ledger file or a run/bus directory."""
    from repro.telemetry import load_ledger, merge_ledgers

    p = Path(path)
    if p.is_dir():
        candidates = sorted((p / "ledgers").glob("*.jsonl")) or sorted(
            p.glob("*.ledger.jsonl")
        )
        if not candidates:
            raise FileNotFoundError(
                f"{path}: no ledger files (looked for ledgers/*.jsonl "
                "and *.ledger.jsonl)"
            )
        return merge_ledgers(candidates)
    return load_ledger(p)


def _ledger_entry_line(e: dict) -> str:
    where = f"step {e['step']}" if "step" in e else str(e.get("phase", "?"))
    if "member" in e:
        where += f" m{e['member']}"
    extras = [
        f"{key}={e[key]}"
        for key in ("tuner", "attempt", "cache", "source")
        if key in e and e[key] not in (None, "run")
    ]
    suffix = f"  ({', '.join(extras)})" if extras else ""
    return (
        f"{float(e['amount_s']):12.3f}s  {e['account']:<15} "
        f"{where:<14}{suffix}"
    )


def _knob_attribution(charges: list[dict], top: int) -> list[str]:
    """Rank knobs by cost spread across the values actually evaluated.

    For every knob seen in charge ``config`` metadata, group the charged
    seconds by the knob's value and report mean cost per value; knobs are
    ranked by the spread (max mean - min mean), which is a first-order
    'which knob choice cost me the most' signal.
    """
    by_knob: dict[str, dict[str, list[float]]] = {}
    for e in charges:
        config = e.get("config")
        if not isinstance(config, dict):
            continue
        amount = float(e["amount_s"])
        for knob, value in config.items():
            by_knob.setdefault(str(knob), {}).setdefault(
                str(value), []
            ).append(amount)
    ranked = []
    for knob, groups in by_knob.items():
        if len(groups) < 2:
            continue
        means = {v: sum(a) / len(a) for v, a in groups.items()}
        lo, hi = min(means, key=means.get), max(means, key=means.get)
        ranked.append((means[hi] - means[lo], knob, lo, hi, means, groups))
    ranked.sort(key=lambda r: (-r[0], r[1]))
    lines = []
    for spread, knob, lo, hi, means, groups in ranked[:top]:
        n = sum(len(a) for a in groups.values())
        lines.append(
            f"  {knob:<28} spread {spread:9.3f}s  "
            f"cheapest {lo}={means[lo]:.3f}s  "
            f"dearest {hi}={means[hi]:.3f}s  ({n} eval(s))"
        )
    return lines


def _explain_one(led, args) -> int:
    src = led.path if led.path is not None else led.source
    charges = led.charges()
    if not charges and not led.counterfactuals():
        print(f"{src}: ledger has no entries", file=sys.stderr)
        return 1
    total = led.total_charged()
    print(f"ledger: {src}")
    print(f"  {len(charges)} charge(s) totalling {total:.3f}s")
    print("\ncharges by account:")
    totals = led.totals()
    for account in sorted(totals, key=lambda a: -totals[a]["seconds"]):
        t = totals[account]
        share = 100.0 * t["seconds"] / total if total else 0.0
        print(
            f"  {account:<15} {t['seconds']:12.3f}s  x{t['count']:<5} "
            f"{share:5.1f}%"
        )
    online = led.total_tuning_seconds()
    if online:
        print(f"\nonline tuning cost (exact session TCT): {online!r}s")
    cf = led.counterfactual_totals()
    if cf:
        print("\ncounterfactual savings (estimated cost avoided):")
        for account in sorted(cf, key=lambda a: -cf[a]["seconds"]):
            t = cf[account]
            print(
                f"  {account:<15} {t['seconds']:12.3f}s  x{t['count']}"
            )
    saved = led.saved_by_screening
    if total + saved > 0:
        ratio = saved / (total + saved)
        print(
            f"\nsaved_by_screening: {saved:.3f}s "
            f"({100.0 * ratio:.1f}% of would-have-been cost)"
        )
    if args.top > 0 and charges:
        expensive = sorted(
            charges, key=lambda e: -float(e["amount_s"])
        )[: args.top]
        print(f"\ntop {len(expensive)} most expensive step(s):")
        for e in expensive:
            print("  " + _ledger_entry_line(e))
    if args.knobs > 0:
        lines = _knob_attribution(charges, args.knobs)
        if lines:
            print("\nper-knob cost attribution (evaluated configs):")
            print("\n".join(lines))
    return 0


def _explain_compare(a, b, args) -> int:
    name_a = str(a.path if a.path is not None else a.source)
    name_b = str(b.path if b.path is not None else b.source)
    ta, tb = a.totals(), b.totals()
    print(f"ledger diff: A={name_a}  B={name_b}")
    print(
        f"\n{'account':<15} {'A':>12} {'B':>12} {'delta (B-A)':>14}"
    )
    for account in sorted(set(ta) | set(tb)):
        sa = ta.get(account, {}).get("seconds", 0.0)
        sb = tb.get(account, {}).get("seconds", 0.0)
        print(
            f"{account:<15} {sa:11.3f}s {sb:11.3f}s {sb - sa:+13.3f}s"
        )
    sa, sb = a.total_charged(), b.total_charged()
    print(f"{'total':<15} {sa:11.3f}s {sb:11.3f}s {sb - sa:+13.3f}s")
    va, vb = a.saved_by_screening, b.saved_by_screening
    print(
        f"\nsaved_by_screening: A {va:.3f}s, B {vb:.3f}s "
        f"(delta {vb - va:+.3f}s)"
    )
    ca, cb = a.cache_savings, b.cache_savings
    if ca or cb:
        print(
            f"cache_saving:       A {ca:.3f}s, B {cb:.3f}s "
            f"(delta {cb - ca:+.3f}s)"
        )
    return 0


def _cmd_explain(args) -> int:
    if args.compare and len(args.path) != 2:
        print("explain: --compare takes exactly two paths", file=sys.stderr)
        return 2
    try:
        views = [_resolve_ledger(p) for p in args.path]
    except (OSError, ValueError) as exc:
        print(f"explain: {exc}", file=sys.stderr)
        return 1
    if args.compare:
        return _explain_compare(views[0], views[1], args)
    if len(views) == 1:
        return _explain_one(views[0], args)
    from repro.telemetry import LedgerView

    merged = LedgerView(
        [e for v in views for e in v.entries], source="merged"
    )
    return _explain_one(merged, args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "tune": _cmd_tune,
        "evaluate": _cmd_evaluate,
        "bench-report": _cmd_bench_report,
        "report": _cmd_bench_report,
        "corpus": _cmd_corpus,
        "telemetry": _cmd_telemetry,
        "explain": _cmd_explain,
        "doctor": _cmd_doctor,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
