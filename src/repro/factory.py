"""Convenience constructors for common object graphs."""

from __future__ import annotations

import numpy as np

from repro.cluster.hardware import CLUSTER_A, ClusterSpec
from repro.config.pipeline import build_pipeline_space
from repro.config.space import ConfigurationSpace
from repro.envs.tuning_env import TuningEnv
from repro.workloads.registry import get_workload

__all__ = ["make_env", "EXPECTED_SPEEDUPS"]

#: per-workload expected speedups over the default configuration, used to
#: set perf_e in Eq. (1).  The paper sets perf_e "according to the
#: performance improvement achieved by prior studies" — i.e. the speedup
#: known to be achievable for each workload class; these values put the
#: best reachable configuration at a reward of roughly +0.5.
EXPECTED_SPEEDUPS = {"WC": 1.7, "TS": 1.5, "PR": 2.3, "KM": 5.4}


def make_env(
    workload_code: str,
    dataset_label: str = "D1",
    cluster: ClusterSpec = CLUSTER_A,
    seed: int | np.random.Generator = 0,
    space: ConfigurationSpace | None = None,
    expected_speedup: float | None = None,
    noise_sigma: float = 0.10,
    fault_profile: str | None = None,
) -> TuningEnv:
    """Build a :class:`TuningEnv` for a paper workload-input pair.

    ``workload_code`` is one of WC/TS/PR/KM; ``dataset_label`` D1/D2/D3.
    ``expected_speedup`` defaults to the workload's entry in
    :data:`EXPECTED_SPEEDUPS`.  ``fault_profile`` names a chaos preset
    from :data:`repro.faults.PROFILES` (``None`` == ``"none"``: no
    injection, bit-identical to fault-free builds).
    """
    if expected_speedup is None:
        expected_speedup = EXPECTED_SPEEDUPS.get(workload_code, 2.0)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return TuningEnv(
        workload=get_workload(workload_code),
        dataset=dataset_label,
        cluster=cluster,
        space=space if space is not None else build_pipeline_space(),
        rng=rng,
        expected_speedup=expected_speedup,
        noise_sigma=noise_sigma,
        fault_profile=fault_profile,
    )
