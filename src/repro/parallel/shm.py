"""Planned shared-memory arenas for zero-copy cross-process arrays.

A shard worker and its parent must agree, without negotiation, on where
each tensor lives inside one ``multiprocessing.shared_memory`` segment.
Both sides therefore build the same :class:`ArenaPlan` from the same
block shapes (:func:`plan_blocks`) and carve numpy views at the planned
offsets — the parent when creating the segment, the worker when
attaching it.  All blocks are float64 and 64-byte aligned so views are
cache-line friendly and BLAS-safe.

Lifecycle rules (the part that keeps ``/dev/shm`` clean):

* exactly one process — the parent — *owns* a segment: it creates it and
  is the only one allowed to ``unlink`` it;
* attaching processes ``close`` their mapping and additionally
  unregister the segment from their own ``resource_tracker``.  Without
  that, Python < 3.13 (no ``track=False``) has the *attacher's* tracker
  unlink the segment when the attacher exits — destroying it under the
  still-running owner;
* :func:`active_segments` scans ``/dev/shm`` for this module's name
  prefix so tests can assert nothing leaked.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

#: Prefix of every segment this module creates; the leak scanner keys on it.
SEGMENT_PREFIX = "repro-shm-"

_ALIGN = 64
_ITEMSIZE = 8  # all blocks are float64


@dataclass(frozen=True)
class BlockSpec:
    """One named float64 block inside an arena."""

    name: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        n = _ITEMSIZE
        for dim in self.shape:
            n *= int(dim)
        return n


@dataclass(frozen=True)
class ArenaPlan:
    """A full segment layout: ordered blocks plus the total byte size.

    Frozen and made only of builtins, so it pickles cheaply through a
    ``spawn`` start method to the attaching worker.
    """

    blocks: tuple[BlockSpec, ...]
    size: int

    def block(self, name: str) -> BlockSpec:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(f"no block named {name!r} in arena plan")


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def plan_blocks(shapes: list[tuple[str, tuple[int, ...]]]) -> ArenaPlan:
    """Lay out named float64 blocks back to back, 64-byte aligned."""
    blocks: list[BlockSpec] = []
    offset = 0
    seen: set[str] = set()
    for name, shape in shapes:
        if name in seen:
            raise ValueError(f"duplicate block name {name!r}")
        seen.add(name)
        blk = BlockSpec(name=name, shape=tuple(int(d) for d in shape),
                        offset=offset)
        blocks.append(blk)
        offset += _aligned(blk.nbytes)
    return ArenaPlan(blocks=tuple(blocks), size=max(offset, _ALIGN))


class ShmArena:
    """One shared-memory segment carved into planned numpy views."""

    def __init__(self, shm: shared_memory.SharedMemory, plan: ArenaPlan,
                 *, owner: bool):
        self._shm = shm
        self.plan = plan
        self.owner = owner
        self.name = shm.name
        self._closed = False

    # -------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, plan: ArenaPlan, *, name: str | None = None) -> ShmArena:
        """Create and own a new segment sized for ``plan``."""
        seg = name or f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(
            create=True, size=plan.size, name=seg
        )
        return cls(shm, plan, owner=True)

    @classmethod
    def attach(cls, name: str, plan: ArenaPlan, *,
               untrack: bool = False) -> ShmArena:
        """Attach to an existing segment without adopting its lifetime.

        Python < 3.13 has no ``track=False``, so the attach registers the
        segment with a resource tracker.  Our attachers are always
        ``spawn``-children of the owner and therefore *share* the owner's
        tracker process, where the registration set-deduplicates against
        the owner's own entry — harmless, and a safety net if the owner
        is SIGKILLed before unlinking.  An attacher running with its own
        tracker (not our topology) would have that tracker unlink the
        segment at attacher exit, destroying it under the live owner;
        pass ``untrack=True`` there.
        """
        shm = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        return cls(shm, plan, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (both owners and attachers)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def unlink(self) -> None:
        """Destroy the segment; only the owner may call this."""
        if not self.owner:
            raise RuntimeError("only the arena owner may unlink the segment")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def __enter__(self) -> ShmArena:
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    # ------------------------------------------------------------ views

    def view(self, name: str) -> np.ndarray:
        """A float64 view of one planned block (zero-copy, writable)."""
        if self._closed:
            raise RuntimeError("arena is closed")
        blk = self.plan.block(name)
        return np.ndarray(
            blk.shape, dtype=np.float64, buffer=self._shm.buf,
            offset=blk.offset,
        )

    def sequential_allocator(self):
        """An ``np.empty``-compatible callable serving planned blocks.

        Each call hands out the next block's view, asserting the
        requested shape matches the plan — this is how
        ``StackedSequential`` is steered into shared memory without
        knowing anything about arenas.
        """
        it = iter(self.plan.blocks)

        def alloc(shape, dtype=np.float64) -> np.ndarray:
            blk = next(it)
            want = tuple(int(d) for d in shape)
            if want != blk.shape or np.dtype(dtype) != np.float64:
                raise ValueError(
                    f"allocator plan mismatch: block {blk.name!r} is "
                    f"{blk.shape}, requested {want} {np.dtype(dtype)}"
                )
            return self.view(blk.name)

        return alloc


def active_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments created by this module."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in root.iterdir() if p.name.startswith(prefix))
