"""Best-effort BLAS thread pinning for sharded workers.

K shard processes each running multi-threaded BLAS oversubscribe the
machine into a slowdown, so every worker pins its BLAS pools to a
budget (usually 1).  Three mechanisms, tried in order of reliability:

1. ``threadpoolctl`` — talks to every loaded pool, works after import;
2. ctypes ``openblas_set_num_threads`` on the already-loaded OpenBLAS;
3. environment variables — only effective for libraries loaded *after*
   the variables are set, which is exactly the situation in a freshly
   spawned worker before it imports numpy's BLAS.

All three are best-effort: correctness never depends on pinning, only
throughput does, and the bench schema records what actually took effect
(:func:`effective_blas_threads`) so cross-host numbers stay honest.
"""

from __future__ import annotations

import ctypes
import os

_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def blas_env(threads: int) -> dict[str, str]:
    """Environment variables that cap BLAS pools at ``threads``."""
    value = str(max(1, int(threads)))
    return {var: value for var in _BLAS_ENV_VARS}


def limit_blas_threads(threads: int) -> str:
    """Pin loaded BLAS pools to ``threads``; returns the mechanism used."""
    threads = max(1, int(threads))
    os.environ.update(blas_env(threads))
    try:
        import threadpoolctl

        threadpoolctl.threadpool_limits(limits=threads)
        return "threadpoolctl"
    except ImportError:
        pass
    except Exception:  # pragma: no cover - exotic pool states
        pass
    try:
        lib = ctypes.CDLL(None)
        for symbol in ("openblas_set_num_threads",
                       "openblas_set_num_threads64_"):
            fn = getattr(lib, symbol, None)
            if fn is not None:
                fn(threads)
                return "openblas"
    except OSError:  # pragma: no cover - no dlopen(NULL) support
        pass
    return "env"


def effective_blas_threads() -> int:
    """The BLAS thread count actually in effect, best available probe."""
    try:
        import threadpoolctl

        infos = threadpoolctl.threadpool_info()
        blas = [i for i in infos if i.get("user_api") == "blas"]
        if blas:
            return max(int(i.get("num_threads", 1)) for i in blas)
    except ImportError:
        pass
    except Exception:  # pragma: no cover
        pass
    try:
        lib = ctypes.CDLL(None)
        fn = getattr(lib, "openblas_get_num_threads", None)
        if fn is not None:
            n = int(fn())
            if n > 0:
                return n
    except OSError:  # pragma: no cover
        pass
    for var in _BLAS_ENV_VARS:
        raw = os.environ.get(var)
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                continue
    return os.cpu_count() or 1


def shard_plan(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``n`` members into contiguous near-equal ``[lo, hi)`` shards.

    Earlier shards get the remainder, so sizes differ by at most one and
    concatenating the ranges in order reproduces ``range(n)`` — the
    property that keeps sharded fold order identical to the single
    process path.
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    if shards <= 0:
        raise ValueError(f"shard count must be positive, got {shards}")
    shards = min(shards, n)
    base, extra = divmod(n, shards)
    plan: list[tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        plan.append((lo, hi))
        lo = hi
    return plan
