"""Multi-core execution plane: shared memory, BLAS pinning, sharding.

Three building blocks, each usable alone:

* :mod:`repro.parallel.shm` — named shared-memory segments planned as
  64-byte-aligned float64 blocks, with owner/attacher lifecycle rules
  that keep ``/dev/shm`` clean across crashes and signals;
* :mod:`repro.parallel.pinning` — best-effort BLAS thread limiting
  (``threadpoolctl`` when available, ctypes OpenBLAS, environment
  variables) so K worker processes x 1 BLAS thread never oversubscribe
  the machine;
* :mod:`repro.parallel.sharding` — :class:`ShardedPopulation`, the
  process-sharded population stepper: K long-lived workers each drive a
  contiguous shard of members over shared-memory parameter blocks and
  replay pools, synchronized by a per-round barrier, bit-identical to
  the single-process lockstep.
"""

from repro.parallel.pinning import (
    blas_env,
    effective_blas_threads,
    limit_blas_threads,
    shard_plan,
)
from repro.parallel.shm import (
    ArenaPlan,
    BlockSpec,
    ShmArena,
    active_segments,
    plan_blocks,
)
from repro.parallel.sharding import ShardCrash, ShardedPopulation, ShardStats

__all__ = [
    "ArenaPlan",
    "BlockSpec",
    "ShardCrash",
    "ShardStats",
    "ShardedPopulation",
    "ShmArena",
    "active_segments",
    "blas_env",
    "effective_blas_threads",
    "limit_blas_threads",
    "plan_blocks",
    "shard_plan",
]
