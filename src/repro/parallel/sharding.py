"""Process-sharded population stepping over shared memory.

:class:`ShardedPopulation` splits N population members into K contiguous
shards (:func:`repro.parallel.pinning.shard_plan`) and hands each shard
to a long-lived worker process that owns a private
:class:`~repro.core.population.PopulationTuner` over its slice.  The
parent drives one lockstep **round** at a time: it broadcasts
``("round", step)`` to every worker, then blocks until all K reply — a
barrier, so round ``step+1`` starts only after the slowest shard
finished ``step`` everywhere, exactly like the single-process loop.

Shared memory
-------------
Each shard's stacked parameter tensors *and* replay-ring arrays live in
one ``multiprocessing.shared_memory`` segment, planned identically on
both sides (:func:`population_block_plan` + the deterministic block
order of :class:`~repro.agents.population.PopulationTD3View`).  The
worker's in-place fine-tune updates therefore write straight through to
pages the parent can map read-only (``ShardedPopulation.shard_arena``)
— no per-round parameter shipping.  The parent owns every segment and
unlinks it in ``_shutdown`` no matter how a worker died, so ``/dev/shm``
stays clean across SIGTERM, SIGKILL, and crashes (gated by the shm
lifecycle tests).

Bit-identity
------------
Sharding changes *where* members step, never *what* they step: every
member keeps its own ``SeedSequence.spawn``-derived generators, a shard
worker visits its members in global member order, and shards share no
RNG or mutable state — so a ``shards=K`` run is bit-identical to
``shards=1`` and to the sequential loop (the ``-m determinism`` suite
gates all three, including checkpoint equality across shard counts).

Telemetry
---------
Workers run detached (null telemetry); after each barrier the parent
re-emits every member's ``online-step`` event plus one
``population-round`` event carrying the slowest shard's round time,
which the heartbeat uses for stall detection
(:mod:`repro.telemetry.heartbeat`).  Metrics/ledger/diagnostics streams
are not forwarded in sharded mode — sessions and checkpoints (the
science) are unaffected.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import signal
import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.parallel.pinning import limit_blas_threads, shard_plan
from repro.parallel.shm import ArenaPlan, ShmArena, plan_blocks

__all__ = [
    "ShardCrash",
    "ShardStats",
    "ShardedPopulation",
    "population_block_plan",
]

_RING_ARRAYS = ("_states", "_actions", "_rewards", "_next_states")
_JOIN_S = 5.0
_POLL_S = 0.1


class ShardCrash(RuntimeError):
    """A shard worker died (crash/SIGKILL) before finishing its round."""


@dataclass
class ShardStats:
    """Wall-clock accounting of the sharded round loop.

    ``barrier_s`` is synchronization overhead: parent time spent per
    round beyond the slowest shard's own compute (send/recv + waiting
    for stragglers).  ``tail_s`` is the parent's post-barrier scalar
    work (event re-emission, checkpoint snapshots).  ``max_round_s`` is
    the slowest single round — the number the heartbeat derives its
    staleness threshold from.
    """

    shards: int = 0
    rounds: int = 0
    barrier_s: float = 0.0
    tail_s: float = 0.0
    max_round_s: float = 0.0
    sum_round_s: float = 0.0
    round_s: list = field(default_factory=list)


def _rings(buffer) -> list[tuple[str, object]]:
    """Named :class:`~repro.replay.base.RingStorage` instances inside a
    replay buffer, in a fixed probe order shared by parent and worker."""
    if buffer is None:
        return []
    rings = []
    for attr in ("_high", "_low", "_storage", "_ring"):
        storage = getattr(buffer, attr, None)
        if storage is not None and hasattr(storage, "_states"):
            rings.append((attr, storage))
    return rings


def population_block_plan(tuners) -> ArenaPlan:
    """The shared-memory layout for one shard's slice of DeepCAT tuners.

    Parameter blocks come first, in exactly the order
    ``PopulationTD3View`` allocates them (actor, critic1, critic2; per
    Linear layer weight then bias) so the arena's sequential allocator
    lines up with the stacked adoption.  Replay-ring arrays follow as
    named blocks, one set per member.
    """
    from repro.nn.layers import Linear

    shapes: list[tuple[str, tuple[int, ...]]] = []
    n = len(tuners)
    lead = tuners[0].agent
    k = 0
    for net_name in ("actor", "critic1", "critic2"):
        for lay in getattr(lead, net_name).layers:
            if isinstance(lay, Linear):
                w_shape = lay.weight.data.shape
                shapes.append((f"param{k}.w", (n, *w_shape)))
                shapes.append((f"param{k}.b", (n, 1, w_shape[1])))
                k += 1
    for mi, dc in enumerate(tuners):
        for ring_name, storage in _rings(dc.buffer):
            for arr_name in _RING_ARRAYS:
                arr = getattr(storage, arr_name)
                shapes.append((f"m{mi}.{ring_name}{arr_name}", arr.shape))
    return plan_blocks(shapes)


def _adopt_rings(tuners, arena: ShmArena) -> None:
    """Move each member's replay-ring arrays into the arena (copy once,
    then rebind) so pushes/samples write through shared memory."""
    for mi, dc in enumerate(tuners):
        for ring_name, storage in _rings(dc.buffer):
            for arr_name in _RING_ARRAYS:
                view = arena.view(f"m{mi}.{ring_name}{arr_name}")
                src = getattr(storage, arr_name)
                view[...] = src
                setattr(storage, arr_name, view)


def _step_events(members, lo: int, before: list[int]) -> list[dict]:
    """Per-member ``online-step`` event payloads for sessions that grew
    this round, in global member order."""
    events = []
    for off, m in enumerate(members):
        n = len(m.session.steps) if m.session is not None else 0
        if n <= before[off]:
            continue
        rec = m.session.steps[-1]
        events.append(
            {
                "member": lo + off,
                "tuner": m.tuner.name,
                "step": rec.step,
                "duration_s": float(rec.duration_s),
                "reward": float(rec.reward),
                "success": bool(rec.success),
                "recommendation_s": float(rec.recommendation_s),
                "attempts": rec.attempts,
                "fallback": bool(rec.fallback),
                "faults": list(rec.faults),
            }
        )
    return events


def _snapshot_bytes(payload, members) -> bytes:
    """Pickle this shard's live member state for the parent.

    The DeepCATs in ``payload`` hold the *same* agent/buffer/RNG objects
    the shard's OnlineTuners mutate (``from_deepcat`` shares them), so
    pickling them captures current weights, replay contents, and RNG
    positions — the exact shape ``save_population_checkpoint`` expects.
    Worker-side telemetry is already the null context, so the payload
    pickles cleanly.
    """
    return pickle.dumps(
        {
            "tuners": payload["tuners"],
            "envs": payload["envs"],
            "sessions": [m.session for m in members],
            "next_steps": [
                len(m.session.steps) if m.session is not None else 0
                for m in members
            ],
            "resiliences": payload["resiliences"],
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _shard_worker_main(
    conn, payload_bytes: bytes, plan: ArenaPlan, shm_name: str,
    blas_threads: int, lo: int, steps: int,
) -> None:
    """Entry point of one shard worker (spawn start method).

    Protocol (all messages are tuples, parent → worker):

    * ``("round", step, time_budget_s)`` → ``("ok", status, elapsed_s,
      events)``;
    * ``("snapshot",)`` → ``("snapshot", bytes)``;
    * ``("finish", time_budget_s)`` → ``("done", snapshot_bytes)``;
    * ``("stop",)`` → worker closes its arena mapping and exits.

    SIGINT is ignored so a Ctrl-C in the parent's terminal (delivered to
    the whole process group) cannot kill a worker mid-write; the parent
    drains the in-flight round and shuts workers down explicitly.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    limit_blas_threads(blas_threads)
    from repro.core.population import PopulationTuner

    arena = None
    try:
        payload = pickle.loads(payload_bytes)
        arena = ShmArena.attach(shm_name, plan)
        pop = PopulationTuner.from_deepcat(
            payload["tuners"],
            payload["envs"],
            fine_tune_updates=payload["fine_tune_updates"],
            exploration_sigma=payload["exploration_sigma"],
            resiliences=payload["resiliences"],
            sessions=payload["sessions"],
            start_steps=payload["start_steps"],
            param_allocator=arena.sequential_allocator(),
        )
        _adopt_rings(payload["tuners"], arena)
        pop.begin(steps)
        conn.send(("ready", len(pop)))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "round":
                _, step, tb = msg
                before = [
                    len(m.session.steps) if m.session is not None else 0
                    for m in pop.members
                ]
                t0 = time.perf_counter()
                status = pop.run_round(step, tb)
                elapsed = time.perf_counter() - t0
                conn.send(
                    ("ok", status, elapsed,
                     _step_events(pop.members, lo, before))
                )
            elif cmd == "snapshot":
                conn.send(("snapshot", _snapshot_bytes(payload, pop.members)))
            elif cmd == "finish":
                _, tb = msg
                pop._finish_quarantined(steps, tb)
                conn.send(("done", _snapshot_bytes(payload, pop.members)))
            elif cmd == "stop":
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown shard command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent gone
        pass
    finally:
        if arena is not None:
            arena.close()
        conn.close()


@dataclass
class _Shard:
    index: int
    lo: int
    hi: int
    process: mp.Process
    conn: object
    arena: ShmArena


class ShardedPopulation:
    """K-process lockstep population, bit-identical to ``shards=1``.

    Construction mirrors :meth:`PopulationTuner.from_deepcat`; ``tune``
    mirrors :meth:`PopulationTuner.tune` (sessions in member order,
    checkpoint cadence, final interrupt snapshot) but runs each round
    across ``shards`` persistent worker processes.
    """

    def __init__(
        self,
        tuners,
        envs,
        *,
        shards: int,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        telemetry=None,
        resiliences=None,
        sessions=None,
        start_steps=None,
        blas_threads: int = 1,
    ):
        from repro.telemetry.context import NULL_CONTEXT

        self.tuners = list(tuners)
        self.envs = list(envs)
        n = len(self.tuners)
        if len(self.envs) != n:
            raise ValueError("need one environment per tuner")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.resiliences = (
            list(resiliences) if resiliences is not None else [None] * n
        )
        self.sessions = (
            list(sessions) if sessions is not None else [None] * n
        )
        self.start_steps = (
            list(start_steps) if start_steps is not None else [0] * n
        )
        if not (
            len(self.resiliences) == len(self.sessions)
            == len(self.start_steps) == n
        ):
            raise ValueError("per-member argument lists must match in length")
        self.fine_tune_updates = fine_tune_updates
        self.exploration_sigma = exploration_sigma
        self.telemetry = telemetry if telemetry is not None else NULL_CONTEXT
        self.blas_threads = max(1, int(blas_threads))
        self.shard_ranges = shard_plan(n, shards)
        self.stats = ShardStats(shards=len(self.shard_ranges))
        self._shards: list[_Shard] = []
        self._ran = False
        self._next_steps = [
            len(s.steps) if s is not None else 0 for s in self.sessions
        ]

    def __len__(self) -> int:
        return len(self.tuners)

    @property
    def shards(self) -> int:
        return len(self.shard_ranges)

    def shard_arena(self, index: int) -> ShmArena:
        """The parent's mapping of shard ``index``'s segment (live views
        of the worker's stacked parameters and replay rings)."""
        return self._shards[index].arena

    # ------------------------------------------------------------ lifecycle

    def _spawn(self, steps: int) -> None:
        from repro.core.persistence import _telemetry_detached

        ctx = mp.get_context("spawn")
        for s, (lo, hi) in enumerate(self.shard_ranges):
            plan = population_block_plan(self.tuners[lo:hi])
            arena = ShmArena.create(plan)
            with ExitStack() as stack:
                for dc, env in zip(self.tuners[lo:hi], self.envs[lo:hi]):
                    stack.enter_context(_telemetry_detached(dc, env))
                payload_bytes = pickle.dumps(
                    {
                        "tuners": self.tuners[lo:hi],
                        "envs": self.envs[lo:hi],
                        "resiliences": self.resiliences[lo:hi],
                        "sessions": self.sessions[lo:hi],
                        "start_steps": self.start_steps[lo:hi],
                        "fine_tune_updates": self.fine_tune_updates,
                        "exploration_sigma": self.exploration_sigma,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn, payload_bytes, plan, arena.name,
                    self.blas_threads, lo, steps,
                ),
                name=f"repro-shard-{s}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._shards.append(
                _Shard(index=s, lo=lo, hi=hi, process=proc,
                       conn=parent_conn, arena=arena)
            )
        for sh in self._shards:
            kind, count = self._recv(sh)
            if kind != "ready" or count != sh.hi - sh.lo:
                raise ShardCrash(
                    f"shard {sh.index} failed its handshake ({kind!r})"
                )

    def _send(self, sh: _Shard, message) -> None:
        """Send that turns a dead worker's broken pipe into the same
        :class:`ShardCrash` the receive path raises."""
        try:
            sh.conn.send(message)
        except (BrokenPipeError, OSError):
            raise ShardCrash(
                f"shard {sh.index} (members [{sh.lo}, {sh.hi})) died "
                f"with exit code {sh.process.exitcode}"
            ) from None

    def _recv(self, sh: _Shard, timeout_s: float | None = None):
        """Blocking receive that notices a dead worker instead of
        hanging forever on a half-open pipe."""
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        while True:
            try:
                if sh.conn.poll(_POLL_S):
                    return sh.conn.recv()
            except (EOFError, OSError):
                raise ShardCrash(
                    f"shard {sh.index} (members [{sh.lo}, {sh.hi})) died "
                    f"with exit code {sh.process.exitcode}"
                ) from None
            if not sh.process.is_alive():
                # One last poll: the worker may have replied and exited.
                if sh.conn.poll(0):
                    return sh.conn.recv()
                raise ShardCrash(
                    f"shard {sh.index} (members [{sh.lo}, {sh.hi})) died "
                    f"with exit code {sh.process.exitcode}"
                )
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(f"shard {sh.index} reply timed out")

    def _shutdown(self) -> None:
        """Stop workers and unlink every segment; safe to call twice and
        after any failure mode (the shm leak tests exercise this)."""
        for sh in self._shards:
            try:
                if sh.process.is_alive():
                    sh.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for sh in self._shards:
            sh.process.join(timeout=_JOIN_S)
            if sh.process.is_alive():  # pragma: no cover - stuck worker
                sh.process.kill()
                sh.process.join(timeout=_JOIN_S)
            try:
                sh.conn.close()
            except OSError:  # pragma: no cover
                pass
            sh.arena.unlink()
        self._shards = []

    # ----------------------------------------------------------------- tune

    def tune(
        self,
        steps: int = 5,
        time_budget_s: float | None = None,
        checkpoint=None,
    ):
        """Run every member for up to ``steps`` rounds across the shard
        fleet; returns the sessions in member order."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        if self._ran:
            raise RuntimeError("this population already ran")
        self._ran = True
        t = self.telemetry
        self._spawn(steps)
        inflight: list[_Shard] = []
        try:
            with t.phase("population.tune"), t.span(
                "population.tune", n=len(self), steps=steps,
                shards=self.shards,
            ):
                for step in range(steps):
                    t0 = time.perf_counter()
                    for sh in self._shards:
                        self._send(sh, ("round", step, time_budget_s))
                    inflight = list(self._shards)
                    replies = []
                    for sh in self._shards:
                        replies.append(self._recv(sh))
                        inflight.remove(sh)
                    round_wall = time.perf_counter() - t0
                    statuses = [r[1] for r in replies]
                    slowest = max(r[2] for r in replies)
                    stepped = any(s == "stepped" for s in statuses)
                    if stepped:
                        self.stats.rounds += 1
                        self.stats.sum_round_s += round_wall
                        self.stats.round_s.append(round_wall)
                        self.stats.max_round_s = max(
                            self.stats.max_round_s, round_wall
                        )
                        self.stats.barrier_s += max(
                            0.0, round_wall - slowest
                        )
                    tail0 = time.perf_counter()
                    self._emit_round(step, replies, round_wall)
                    if stepped and checkpoint is not None and (
                        (step + 1) % checkpoint.every == 0
                    ):
                        self._checkpoint(checkpoint)
                    self.stats.tail_s += time.perf_counter() - tail0
                    if all(s == "complete" for s in statuses):
                        break
                self._finish(time_budget_s)
        except KeyboardInterrupt:
            self._drain(inflight)
            if checkpoint is not None:
                try:
                    self._snapshot_all()
                    self._refresh_manager(checkpoint)
                    checkpoint.save_if_stale(self.sessions, self._next_steps)
                except ShardCrash:  # pragma: no cover - race with kill
                    pass
            raise
        finally:
            self._shutdown()
        return self.sessions

    def _drain(self, inflight: list[_Shard]) -> None:
        """Absorb replies of a round interrupted mid-barrier, so worker
        state sits at a clean step boundary before snapshotting."""
        for sh in inflight:
            try:
                self._recv(sh, timeout_s=60.0)
            except (ShardCrash, TimeoutError):  # pragma: no cover
                pass

    def _emit_round(self, step: int, replies, round_wall: float) -> None:
        t = self.telemetry
        n_stepped = 0
        with ExitStack() as flushes:
            flushes.enter_context(t.logger.deferred())
            for reply in replies:
                for ev in reply[3]:
                    t.event("online-step", **ev)
                    t.count(
                        "online.steps_total",
                        help="online tuning steps served",
                        tuner=ev["tuner"],
                    )
                    n_stepped += 1
            if n_stepped:
                t.event(
                    "population-round",
                    step=step,
                    round_s=float(round_wall),
                    shards=self.shards,
                    members=n_stepped,
                )

    # ----------------------------------------------------- state collection

    def _snapshot_all(self) -> None:
        for sh in self._shards:
            self._send(sh, ("snapshot",))
        for sh in self._shards:
            kind, blob = self._recv(sh)
            if kind != "snapshot":  # pragma: no cover - protocol error
                raise ShardCrash(f"shard {sh.index} bad snapshot reply")
            self._absorb(sh, blob)

    def _absorb(self, sh: _Shard, blob: bytes) -> None:
        snap = pickle.loads(blob)
        for off, gi in enumerate(range(sh.lo, sh.hi)):
            self.tuners[gi] = snap["tuners"][off]
            self.envs[gi] = snap["envs"][off]
            self.sessions[gi] = snap["sessions"][off]
            self.resiliences[gi] = snap["resiliences"][off]
            self._next_steps[gi] = snap["next_steps"][off]

    def _refresh_manager(self, checkpoint) -> None:
        checkpoint.tuners = list(self.tuners)
        checkpoint.envs = list(self.envs)
        checkpoint.resiliences = list(self.resiliences)

    def _checkpoint(self, checkpoint) -> None:
        self._snapshot_all()
        self._refresh_manager(checkpoint)
        checkpoint.save(self.sessions, self._next_steps)

    def _finish(self, time_budget_s: float | None) -> None:
        for sh in self._shards:
            self._send(sh, ("finish", time_budget_s))
        for sh in self._shards:
            kind, blob = self._recv(sh)
            if kind != "done":  # pragma: no cover - protocol error
                raise ShardCrash(f"shard {sh.index} bad finish reply")
            self._absorb(sh, blob)
        t = self.telemetry
        if t.manifest is not None:
            for session in self.sessions:
                if session is None:
                    continue
                successes = [s for s in session.steps if s.success]
                t.manifest.record_stage(
                    "online-tune",
                    tuner=session.tuner,
                    workload=session.workload,
                    dataset=session.dataset,
                    steps=len(session.steps),
                    best_duration_s=(
                        session.best_duration_s if successes else None
                    ),
                    total_tuning_seconds=session.total_tuning_seconds,
                )
