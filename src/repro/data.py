"""Offline sample corpora: generation, storage, loading.

The paper spends "3-4 days to generate enough samples" for offline
training and feeds "thousands of offline samples" to OtterTune.  This
module makes that data a first-class artifact: generate a corpus of
(configuration, metrics, performance) triples on the simulator, persist
it as ``.npz``, and feed it back into OtterTune repositories or custom
analyses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines.ottertune.tuner import OtterTune
from repro.envs.tuning_env import TuningEnv
from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["Corpus", "generate_corpus", "save_corpus", "load_corpus"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Corpus:
    """A set of offline observations for one workload pair."""

    workload_id: str  # e.g. "TS-D1"
    configs: np.ndarray  # (n, action_dim), normalized vectors
    metrics: np.ndarray  # (n, state_dim), post-run load averages
    durations: np.ndarray  # (n,), seconds (failures penalized)
    success: np.ndarray  # (n,), bool

    def __post_init__(self):
        n = self.configs.shape[0]
        if not (
            self.metrics.shape[0] == n
            and self.durations.shape == (n,)
            and self.success.shape == (n,)
        ):
            raise ValueError("corpus arrays misaligned")

    def __len__(self) -> int:
        return int(self.configs.shape[0])

    @property
    def failure_rate(self) -> float:
        return float(1.0 - self.success.mean()) if len(self) else 0.0

    @property
    def best_duration_s(self) -> float:
        ok = self.durations[self.success]
        if ok.size == 0:
            raise ValueError("corpus has no successful runs")
        return float(ok.min())

    def feed_ottertune(self, tuner: OtterTune) -> None:
        """Load every observation into an OtterTune repository."""
        for i in range(len(self)):
            tuner.observe_offline(
                self.workload_id,
                self.configs[i],
                self.metrics[i],
                float(self.durations[i]),
            )


def generate_corpus(
    env: TuningEnv,
    workload_id: str,
    n_samples: int,
    rng: np.random.Generator,
    sampler: str = "uniform",
) -> Corpus:
    """Evaluate ``n_samples`` random configurations on ``env``.

    ``sampler`` is ``"uniform"`` or ``"lhs"`` (Latin hypercube, better
    coverage per sample).  Failed runs are recorded with the
    ``FAILURE_PERF_FACTOR`` x default penalty as their duration, the
    convention the reward function uses.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if sampler == "uniform":
        vectors = env.space.sample_vectors(rng, n_samples)
    elif sampler == "lhs":
        vectors = env.space.latin_hypercube(rng, n_samples)
    else:
        raise ValueError(f"unknown sampler {sampler!r}")

    configs = np.empty((n_samples, env.action_dim))
    metrics = np.empty((n_samples, env.state_dim))
    durations = np.empty(n_samples)
    success = np.empty(n_samples, dtype=bool)
    penalty = FAILURE_PERF_FACTOR * env.default_duration
    # The vectors are pre-drawn, so the whole corpus goes through the
    # simulator's batched fast path (bit-identical to stepping one by
    # one — see TuningEnv.step_batch).
    for i, outcome in enumerate(env.step_batch(vectors)):
        configs[i] = outcome.action
        metrics[i] = outcome.next_state
        durations[i] = outcome.duration_s if outcome.success else penalty
        success[i] = outcome.success
    return Corpus(
        workload_id=workload_id,
        configs=configs,
        metrics=metrics,
        durations=durations,
        success=success,
    )


def save_corpus(corpus: Corpus, path: str | Path) -> None:
    """Persist a corpus as a compressed ``.npz`` archive."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "workload_id": corpus.workload_id,
    }
    np.savez_compressed(
        Path(path),
        __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
        configs=corpus.configs,
        metrics=corpus.metrics,
        durations=corpus.durations,
        success=corpus.success,
    )


def load_corpus(path: str | Path) -> Corpus:
    """Load a corpus written by :func:`save_corpus`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported corpus version {meta.get('format_version')}"
            )
        return Corpus(
            workload_id=meta["workload_id"],
            configs=archive["configs"],
            metrics=archive["metrics"],
            durations=archive["durations"],
            success=archive["success"].astype(bool),
        )
