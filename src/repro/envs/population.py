"""A population of independent tuning environments stepped as one batch.

:class:`VectorTuningEnv` holds N fully independent
:class:`~repro.envs.tuning_env.TuningEnv` sessions — each with its own
state tracker, simulator RNG, fault injector, and reward baseline — and
evaluates one action per session through a *single* analytic simulator
pass (:func:`repro.sim.batch.evaluate_population`).

The contract is bit-identity: ``VectorTuningEnv([e0, .., eN]).step(A)``
produces exactly ``[e0.step(A[0]), .., eN.step(A[N])]`` field-for-field,
including every RNG stream (simulator noise/tails, fault perturbation,
metric dropout, load-average evolution), because

* the deterministic pass-1 stage math is row-independent and shared, and
* everything stochastic is drawn per session, in session order, from
  that session's own generators — the streams are disjoint objects, so
  batching across sessions cannot reorder any single session's draws.

Pinned by ``tests/test_population_equivalence.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.envs.tuning_env import StepOutcome, TuningEnv
from repro.sim.batch import evaluate_population

__all__ = ["VectorTuningEnv"]


class VectorTuningEnv:
    """N independent :class:`TuningEnv` sessions stepped in lockstep.

    All sessions must share the same workload, dataset, cluster, and
    configuration space (that is what makes the analytic pass shareable);
    they must be *distinct objects* (sessions sharing an environment
    would interleave one RNG stream and break sequential equivalence).
    """

    def __init__(self, envs: Sequence[TuningEnv]):
        envs = list(envs)
        if not envs:
            raise ValueError("population needs at least one environment")
        if len({id(e) for e in envs}) != len(envs):
            raise ValueError(
                "population environments must be distinct objects"
            )
        lead = envs[0]
        for env in envs[1:]:
            if (
                env.runner.workload.code != lead.runner.workload.code
                or env.runner.dataset.label != lead.runner.dataset.label
                or env.cluster != lead.cluster
                or env.space.dim != lead.space.dim
            ):
                raise ValueError(
                    "population environments must share "
                    "workload/dataset/cluster/space"
                )
        self.envs = envs
        self.space = lead.space

    def __len__(self) -> int:
        return len(self.envs)

    @property
    def states(self) -> np.ndarray:
        """Stacked clean states, one row per session (copies)."""
        return np.stack([env.state for env in self.envs])

    @property
    def observations(self) -> np.ndarray:
        """Stacked last observations (possibly fault-corrupted; copies)."""
        return np.stack([env.observation for env in self.envs])

    def attach_telemetry(self, telemetry) -> None:
        for env in self.envs:
            env.attach_telemetry(telemetry)

    def step(
        self,
        actions: np.ndarray,
        indices: Sequence[int] | None = None,
    ) -> list[StepOutcome]:
        """Step every session (or the ``indices`` subset) with one action
        per session.

        Bit-identical to ``[self.envs[i].step(a) for i, a in
        zip(indices, actions)]``; see the module docstring for why.
        """
        idx = (
            list(range(len(self.envs))) if indices is None else list(indices)
        )
        mat = np.asarray(actions, dtype=np.float64)
        if mat.ndim != 2 or mat.shape != (len(idx), self.space.dim):
            raise ValueError(
                f"expected shape ({len(idx)}, {self.space.dim}), "
                f"got {mat.shape}"
            )
        vecs = np.clip(mat, 0.0, 1.0)
        configs = self.space.decode_batch(vecs)
        sims = [self.envs[i].runner.simulator for i in idx]
        results = evaluate_population(sims, vecs, self.space)
        return [
            self.envs[i]._absorb_result(result, vecs[r].copy(), configs[r])
            for r, (i, result) in enumerate(zip(idx, results))
        ]
