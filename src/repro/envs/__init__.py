"""DRL environment for configuration tuning (§3.1 of the paper).

:class:`TuningEnv` is the single-workload environment of the paper's
evaluation; :class:`DynamicTuningEnv` (extension) chains several
workload phases behind the same interface for drift experiments.
"""

from repro.envs.dynamic import DynamicTuningEnv, Phase
from repro.envs.reward import RewardFunction
from repro.envs.tuning_env import StepOutcome, TuningEnv

__all__ = [
    "RewardFunction",
    "TuningEnv",
    "StepOutcome",
    "DynamicTuningEnv",
    "Phase",
]
