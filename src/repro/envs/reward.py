"""The immediate reward function — Eq. (1) of the paper.

    r_t = (perf_e − perf_t) / perf_e

where ``perf`` is execution time (lower is better) and ``perf_e`` is the
*expected* performance, set as a speedup with respect to the default
execution time ("According to the performance improvement achieved by
prior studies, we set perf_e to be a speedup with respect to the default
execution time").

With an ambitious expected speedup, most configurations earn a negative
reward and only close-to-optimal ones a positive reward — the sparse
high-reward regime that motivates RDPER.
"""

from __future__ import annotations

from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["RewardFunction"]


class RewardFunction:
    """Eq. (1), parameterized by the expected speedup over default."""

    def __init__(self, default_perf: float, expected_speedup: float = 4.0):
        if default_perf <= 0:
            raise ValueError("default performance must be positive")
        if expected_speedup <= 0:
            raise ValueError("expected speedup must be positive")
        self.default_perf = float(default_perf)
        self.expected_speedup = float(expected_speedup)
        #: perf_e — the target execution time
        self.perf_e = self.default_perf / self.expected_speedup

    def __call__(self, perf_t: float, success: bool = True) -> float:
        """Reward for an evaluation with execution time ``perf_t``.

        Failed evaluations (OOM, YARN rejection) are charged
        ``FAILURE_PERF_FACTOR`` x the default execution time — the
        operator's cost of falling back to the default after a crash.
        """
        if perf_t <= 0:
            raise ValueError("perf_t must be positive")
        if not success:
            perf_t = FAILURE_PERF_FACTOR * self.default_perf
        return (self.perf_e - perf_t) / self.perf_e

    def perf_from_reward(self, reward: float) -> float:
        """Invert Eq. (1): the execution time implying ``reward``."""
        return self.perf_e * (1.0 - reward)
