"""The configuration-tuning environment.

State: per-node ``uptime`` load averages (normalized).
Action: a point in [0,1]^32, decoded into a configuration.
Reward: Eq. (1) against the default execution time.

Episodes are step sequences of configuration evaluations; there is no
terminal state in the MDP sense — the paper bounds episodes by a step
count, which the trainer controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cluster.hardware import ClusterSpec
from repro.cluster.state import ClusterStateTracker
from repro.config.space import ConfigurationSpace
from repro.envs.reward import RewardFunction
from repro.faults import FaultInjector, FaultProfile, get_profile
from repro.hibench.runner import BenchmarkRunner
from repro.sim.result import ExecutionResult
from repro.workloads.base import DatasetSpec, Workload

__all__ = ["TuningEnv", "StepOutcome"]


@dataclass(frozen=True)
class StepOutcome:
    """Everything one environment step produced."""

    state: np.ndarray  # state the action was taken in
    action: np.ndarray  # normalized configuration vector
    reward: float
    next_state: np.ndarray
    duration_s: float  # evaluation cost of this step (the tuning cost)
    success: bool
    config: dict[str, Any]
    result: ExecutionResult
    #: chaos faults injected into this step ("crash", "hang",
    #: "executor-loss", "straggler", "metric-dropout"); empty when clean
    faults: tuple[str, ...] = ()


class TuningEnv:
    """Online/offline tuning environment over the simulated cluster."""

    def __init__(
        self,
        workload: Workload,
        dataset: DatasetSpec | str,
        cluster: ClusterSpec,
        space: ConfigurationSpace,
        rng: np.random.Generator,
        expected_speedup: float = 4.0,
        noise_sigma: float = 0.10,
        fault_profile: FaultProfile | str | None = None,
    ):
        # Always spawn three children: the first two match the historical
        # spawn(2) exactly (SeedSequence spawn keys are positional), so
        # fault-free environments stay bit-identical to older builds.
        state_rng, sim_rng, fault_rng = rng.spawn(3)
        self.space = space
        self.runner = BenchmarkRunner(
            workload, dataset, cluster, sim_rng, noise_sigma=noise_sigma
        )
        self.cluster = cluster
        self._tracker = ClusterStateTracker(cluster, state_rng)
        default_perf = self.runner.simulator.default_duration(space)
        self.reward_fn = RewardFunction(default_perf, expected_speedup)
        self.fault_profile = get_profile(fault_profile)
        self._fault_injector = FaultInjector(self.fault_profile, fault_rng)
        # Attach AFTER the default duration is cached: the reward
        # baseline must come from a clean run of the defaults.
        self.runner.simulator.fault_injector = self._fault_injector
        self._state = self._tracker.reset()
        self._last_observation: np.ndarray | None = None
        self.total_evaluation_seconds = 0.0
        self.steps_taken = 0

    @property
    def state_dim(self) -> int:
        return self._tracker.dim

    @property
    def action_dim(self) -> int:
        return self.space.dim

    @property
    def state(self) -> np.ndarray:
        """Current internal state (copy); always clean."""
        return self._state.copy()

    @property
    def observation(self) -> np.ndarray:
        """What the metric collector last reported (copy).

        Equals :attr:`state` until a step runs; afterwards it is that
        step's returned ``next_state``, which metric dropout may have
        corrupted with NaNs.  Checkpointed sessions resume from this —
        the corruption the agent saw is part of the trajectory.
        """
        if self._last_observation is None:
            return self.state
        return self._last_observation.copy()

    @property
    def default_duration(self) -> float:
        return self.reward_fn.default_perf

    def reset(self) -> np.ndarray:
        """Reset the load-average history (a fresh tuning request)."""
        self._state = self._tracker.reset()
        self._last_observation = None
        return self.state

    def attach_telemetry(self, telemetry) -> None:
        """Propagate a :class:`~repro.telemetry.context.RunContext` to
        the underlying simulator (stage timings, fault injections).

        Called automatically by :class:`~repro.core.offline.OfflineTrainer`
        and :class:`~repro.core.online.OnlineTuner`; passing ``None``
        detaches back to the null context.
        """
        from repro.telemetry.context import NULL_CONTEXT

        self.runner.simulator.telemetry = (
            telemetry if telemetry is not None else NULL_CONTEXT
        )

    def step(self, action: np.ndarray) -> StepOutcome:
        """Evaluate the configuration encoded by ``action``.

        The action is clipped into [0,1]^d (mirroring the paper's boundary
        clipping for out-of-scope recommendations), decoded, and run on
        the cluster.
        """
        prev_state = self.state
        vec = self.space.clip_vector(np.asarray(action, dtype=np.float64))
        config = self.space.decode(vec)
        report = self.runner.run(config)
        result = report.result
        reward = self.reward_fn(result.duration_s, success=result.success)
        demand = (
            result.cpu_demand_per_node
            if result.cpu_demand_per_node.size
            else np.full(self.cluster.n_nodes, 0.1)
        )
        # The tracker always folds in the true demand — the cluster's
        # load exists whether or not the metric collector sees it; only
        # the *observation* handed back may be corrupted.
        self._state = self._tracker.observe(demand)
        observation, n_dropped = self._fault_injector.corrupt_state(
            self.state
        )
        self._last_observation = observation
        faults = result.injected_faults
        if n_dropped:
            faults = (*faults, "metric-dropout")
            self.runner.simulator.telemetry.count(
                "faults.injected_total",
                n_dropped,
                help="stochastic chaos injections by kind",
                kind="metric-dropout",
            )
        self.total_evaluation_seconds += result.duration_s
        self.steps_taken += 1
        return StepOutcome(
            state=prev_state,
            action=vec,
            reward=float(reward),
            next_state=observation,
            duration_s=result.duration_s,
            success=result.success,
            config=config,
            result=result,
            faults=faults,
        )

    def step_batch(self, actions: np.ndarray) -> list[StepOutcome]:
        """Evaluate ``n`` actions through the vectorized simulator path.

        Bit-identical to ``[self.step(a) for a in actions]``: the analytic
        stage math is broadcast over the candidate axis, while every RNG
        stream (measurement noise and straggler tails on the simulator
        generator, fault perturbation and metric dropout on the fault
        generator, load-average evolution on the state generator) is
        drawn per-candidate in the exact scalar order.
        """
        mat = np.asarray(actions, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.space.dim:
            raise ValueError(
                f"expected shape (n, {self.space.dim}), got {mat.shape}"
            )
        vecs = np.clip(mat, 0.0, 1.0)
        configs = self.space.decode_batch(vecs)
        sim = self.runner.simulator
        # Fault perturbation is interleaved with metric dropout on the
        # same generator, so it must happen per-step here rather than
        # batched inside the simulator.
        results = sim.evaluate_batch(vecs, self.space, apply_faults=False)
        outcomes: list[StepOutcome] = []
        for i, result in enumerate(results):
            outcomes.append(
                self._absorb_result(result, vecs[i].copy(), configs[i])
            )
        return outcomes

    def _absorb_result(
        self,
        result: ExecutionResult,
        vec: np.ndarray,
        config: dict[str, Any],
    ) -> StepOutcome:
        """Fold one *clean* (fault-free, unrecorded) simulator result into
        the environment, bit-identically to the tail of :meth:`step`.

        Shared by :meth:`step_batch` and the population environment
        (:class:`~repro.envs.population.VectorTuningEnv`): both evaluate
        through the vectorized simulator with ``apply_faults=False`` and
        then interleave fault perturbation with metric dropout per step,
        in the exact scalar RNG order.
        """
        sim = self.runner.simulator
        prev_state = self.state
        if self._fault_injector.enabled:
            result, injected = self._fault_injector.perturb_result(result)
            for kind in injected:
                sim.telemetry.count(
                    "faults.injected_total",
                    help="stochastic chaos injections by kind",
                    kind=kind,
                )
        self.runner.record(result)
        reward = self.reward_fn(result.duration_s, success=result.success)
        demand = (
            result.cpu_demand_per_node
            if result.cpu_demand_per_node.size
            else np.full(self.cluster.n_nodes, 0.1)
        )
        self._state = self._tracker.observe(demand)
        observation, n_dropped = self._fault_injector.corrupt_state(
            self.state
        )
        self._last_observation = observation
        faults = result.injected_faults
        if n_dropped:
            faults = (*faults, "metric-dropout")
            sim.telemetry.count(
                "faults.injected_total",
                n_dropped,
                help="stochastic chaos injections by kind",
                kind="metric-dropout",
            )
        self.total_evaluation_seconds += result.duration_s
        self.steps_taken += 1
        return StepOutcome(
            state=prev_state,
            action=vec,
            reward=float(reward),
            next_state=observation,
            duration_s=result.duration_s,
            success=result.success,
            config=config,
            result=result,
            faults=faults,
        )
