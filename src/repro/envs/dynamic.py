"""Time-varying tuning environment.

The paper's motivation (§1): "the performance of a big data framework
under the same configuration is highly related to the workload
characteristics (e.g., workload type and input data size) ... which may
frequently change with time in practice."  This environment makes that
concrete: a schedule of (workload, dataset) phases, each active for a
fixed number of steps.  The tuner sees the same interface as
:class:`~repro.envs.tuning_env.TuningEnv`; rewards are always relative
to the *currently active* phase's default execution time, so a
configuration that was great for the old phase earns whatever it is
worth under the new one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import ClusterSpec
from repro.config.space import ConfigurationSpace
from repro.envs.tuning_env import StepOutcome, TuningEnv
from repro.factory import EXPECTED_SPEEDUPS
from repro.workloads.registry import get_workload

__all__ = ["Phase", "DynamicTuningEnv"]


@dataclass(frozen=True)
class Phase:
    """One segment of the schedule."""

    workload: str  # WC/TS/PR/KM
    dataset: str  # D1/D2/D3
    steps: int

    def __post_init__(self):
        if self.steps <= 0:
            raise ValueError("phase must last at least one step")


class DynamicTuningEnv:
    """A sequence of TuningEnv phases behind one environment interface."""

    def __init__(
        self,
        phases: list[Phase],
        cluster: ClusterSpec,
        space: ConfigurationSpace,
        seed: int = 0,
        noise_sigma: float = 0.10,
    ):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self.space = space
        rng = np.random.default_rng(seed)
        self._envs = []
        for i, phase in enumerate(self.phases):
            self._envs.append(
                TuningEnv(
                    workload=get_workload(phase.workload),
                    dataset=phase.dataset,
                    cluster=cluster,
                    space=space,
                    rng=np.random.default_rng(
                        int(rng.integers(0, 2**31 - 1))
                    ),
                    expected_speedup=EXPECTED_SPEEDUPS.get(
                        phase.workload, 2.0
                    ),
                    noise_sigma=noise_sigma,
                )
            )
        self._phase_idx = 0
        self._steps_in_phase = 0
        self.steps_taken = 0
        self.total_evaluation_seconds = 0.0
        #: (step index, phase index) transitions, for reports
        self.switch_log: list[tuple[int, int]] = [(0, 0)]

    # -- interface parity with TuningEnv ----------------------------------

    @property
    def state_dim(self) -> int:
        return self._envs[0].state_dim

    @property
    def action_dim(self) -> int:
        return self.space.dim

    @property
    def current_phase(self) -> Phase:
        return self.phases[self._phase_idx]

    @property
    def current_env(self) -> TuningEnv:
        return self._envs[self._phase_idx]

    @property
    def state(self) -> np.ndarray:
        return self.current_env.state

    @property
    def default_duration(self) -> float:
        """The active phase's default execution time."""
        return self.current_env.default_duration

    @property
    def exhausted(self) -> bool:
        """True once every phase has used up its steps."""
        return (
            self._phase_idx == len(self.phases) - 1
            and self._steps_in_phase >= self.current_phase.steps
        )

    def step(self, action: np.ndarray) -> StepOutcome:
        """Evaluate on the active phase, advancing the schedule."""
        if self.exhausted:
            raise RuntimeError("schedule exhausted; no phases left")
        if self._steps_in_phase >= self.current_phase.steps:
            self._phase_idx += 1
            self._steps_in_phase = 0
            self.switch_log.append((self.steps_taken, self._phase_idx))
        outcome = self.current_env.step(action)
        self._steps_in_phase += 1
        self.steps_taken += 1
        self.total_evaluation_seconds += outcome.duration_s
        return outcome

    @property
    def runner(self):
        """Active phase's runner (interface parity with TuningEnv)."""
        return self.current_env.runner
