"""Measure a line-coverage baseline for ``src/repro`` without coverage.py.

Usage::

    PYTHONPATH=src python tools/coverage_baseline.py [pytest args...]

CI gates on ``pytest --cov=repro --cov-fail-under=N`` (see
``.github/workflows/ci.yml``), but pytest-cov is not part of the runtime
image this repository is developed in, and installing packages ad hoc is
off the table.  This script approximates coverage.py closely enough to
*pin* the gate: it runs the test suite in-process under a
``sys.settrace`` hook that records every executed line of ``src/repro``,
statically counts executable lines per module via the ``ast`` module
(statement line numbers — the same notion coverage.py starts from), and
prints the per-file and total percentages.

The numbers differ from coverage.py by a point or two (branch-less
lines, multi-line statements), so the CI pin is set a safety margin
*below* the figure printed here — the gate exists to catch regressions
of tens of points (a new untested subsystem), not single-point drift.

Default pytest args exclude ``-m determinism`` (those tests re-run the
same engine paths the unit tests already trace, and are slow under the
tracer); pass explicit args to override.
"""

from __future__ import annotations

import ast
import sys
import threading
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """Line numbers coverage.py would consider executable statements."""
    tree = ast.parse(path.read_text())
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)
    return lines


def main(argv: list[str]) -> int:
    import pytest

    pytest_args = argv or ["-x", "-q", "-p", "no:cacheprovider",
                           "-m", "not determinism"]

    prefix = str(SRC)
    executed: dict[str, set[int]] = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        hits = executed.setdefault(filename, set())

        def local(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return local

        if event == "call":
            hits.add(frame.f_lineno)
            return local
        return None

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        stmts = executable_lines(path)
        if not stmts:
            continue
        hits = executed.get(str(path), set()) & stmts
        total_exec += len(stmts)
        total_hit += len(hits)
        rows.append((path.relative_to(SRC.parent),
                     len(hits), len(stmts),
                     100.0 * len(hits) / len(stmts)))

    width = max(len(str(r[0])) for r in rows)
    for rel, hit, stmts, pct in rows:
        print(f"{str(rel):<{width}}  {hit:5d}/{stmts:<5d}  {pct:6.1f}%")
    pct_total = 100.0 * total_hit / max(total_exec, 1)
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_hit:5d}/{total_exec:<5d}  "
          f"{pct_total:6.1f}%")
    print(f"\nsuggested CI pin (baseline minus safety margin): "
          f"--cov-fail-under={max(0, int(pct_total) - 5)}")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
