"""CI chaos-engine smoke: kill workers mid-grid, demand bit-identity.

Usage::

    PYTHONPATH=src python tools/chaos_engine_smoke.py \
        [--jobs 4] [--kill-rate 0.5] [--seed 7] [--tasks 6] \
        [--report failure-report.json]

Runs a small random-search-CDF grid twice:

1. **clean** — ``jobs=1``, the plain inline path (the reference);
2. **soaked** — ``jobs=N`` under a deterministic
   :class:`repro.faults.WorkerChaos` schedule that SIGKILLs doomed
   worker attempts mid-task.

The run passes (exit 0) iff the chaos schedule actually killed at least
one worker, the supervised grid still completed every cell (no
quarantine), and the soaked results are bit-identical to the clean ones
— the engine's core promise that supervision never changes the science.
The engine's failure report is written to ``--report`` either way, so
CI uploads the evidence on success and on failure alike.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.engine import (  # noqa: E402
    ExperimentEngine,
    random_cdf_task,
)
from repro.faults import WorkerChaos  # noqa: E402


def build_grid(n_tasks: int, n_samples: int):
    return [
        random_cdf_task(workload="WC", dataset="D1", n_samples=n_samples,
                        seed=1000 + i)
        for i in range(n_tasks)
    ]


def identical(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x is None or y is None:
            return False
        if not np.array_equal(x["durations"], y["durations"]):
            return False
        if (x["n_failed"] != y["n_failed"]
                or x["default_duration"] != y["default_duration"]):
            return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--kill-rate", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=6)
    parser.add_argument("--n-samples", type=int, default=20)
    parser.add_argument("--task-retries", type=int, default=2)
    parser.add_argument("--report", type=Path,
                        default=Path("failure-report.json"))
    args = parser.parse_args(argv)

    tasks = build_grid(args.tasks, args.n_samples)
    chaos = WorkerChaos(seed=args.seed, kill_rate=args.kill_rate)
    scheduled = sum(chaos.kills_for(t.canonical_key()) for t in tasks)
    print(f"chaos schedule: {scheduled} kill(s) across {len(tasks)} task(s)")

    clean = ExperimentEngine(jobs=1).run(tasks)
    engine = ExperimentEngine(jobs=args.jobs, chaos=chaos,
                              task_retries=args.task_retries)
    soaked = engine.run(tasks)

    report = engine.failure_report()
    report["chaos"] = {
        "seed": args.seed,
        "kill_rate": args.kill_rate,
        "scheduled_kills": scheduled,
        "jobs": args.jobs,
    }
    args.report.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"engine: {engine.stats.summary()}")
    print(f"failure report written to {args.report}")

    failures = []
    if scheduled < 1:
        failures.append(
            "chaos schedule killed nothing — raise --kill-rate or change "
            "--seed so the soak actually exercises the supervisor"
        )
    if engine.stats.task_failures < scheduled:
        failures.append(
            f"only {engine.stats.task_failures} failure(s) observed for "
            f"{scheduled} scheduled kill(s)"
        )
    if engine.stats.pool_rebuilds < 1:
        failures.append("no pool rebuilds — the kills never broke a pool")
    if engine.stats.quarantined_tasks:
        failures.append(
            f"{engine.stats.quarantined_tasks} task(s) quarantined — the "
            "grid did not complete"
        )
    if any(r is None for r in soaked):
        failures.append("soaked run left empty result slots")
    elif not identical(clean, soaked):
        failures.append(
            "soaked results differ from the clean jobs=1 run — "
            "supervision changed the science"
        )

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"OK: {scheduled} worker kill(s) survived, "
        f"{engine.stats.pool_rebuilds} pool rebuild(s), results "
        "bit-identical to the clean run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
