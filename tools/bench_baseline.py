"""Regenerate the committed benchmark baseline.

Usage::

    PYTHONPATH=src python tools/bench_baseline.py [--repetitions N]

``repro bench compare`` gates pull requests against
``benchmarks/baselines/BENCH_baseline.json``.  That file is a committed
artifact, so it goes stale whenever the suite gains a benchmark or a
deliberate performance change moves a median.  This script re-runs the
full suite (micro + macro) at the default repetition count and rewrites
the baseline in place; commit the result together with the change that
motivated it.

Absolute timings in the baseline are machine-specific.  The regression
gate tolerates that by design: CI's ``bench-smoke`` job only checks the
schema (``--check-schema``), while timing comparisons are meant to be
run locally — same machine for baseline and candidate.  Regenerate on
the machine you intend to compare on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_baseline.json"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--out", default=str(BASELINE),
        help=f"output path (default: {BASELINE.relative_to(REPO)})",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    from repro.bench import run_benchmarks, validate_doc

    doc = run_benchmarks(
        repetitions=args.repetitions,
        warmup=args.warmup,
        progress=lambda b: print(f"bench: {b.name} ...", flush=True),
    )
    problems = validate_doc(doc)
    if problems:  # pragma: no cover - would be a harness bug
        print(f"refusing to write invalid baseline: {problems}",
              file=sys.stderr)
        return 1

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(doc['results'])} benchmark(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
