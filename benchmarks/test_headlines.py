"""The final gate: the paper's headline claims over the comparison grid."""

from repro.experiments.headline import check_headlines, format_checks


def test_headline_claims(benchmark, report):
    checks = benchmark.pedantic(
        check_headlines, kwargs=dict(scale="quick"), rounds=1, iterations=1
    )
    report("headlines", format_checks(checks))
    # The two ordering claims are the reproduction's core result.
    core = [c for c in checks if "avg speedup" in c.claim]
    assert all(c.passed for c in core), format_checks(checks)
    # Of the remaining claims, allow at most one miss at quick scale.
    misses = [c for c in checks if not c.passed]
    assert len(misses) <= 1, format_checks(checks)
