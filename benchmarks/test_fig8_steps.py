"""Figure 8: best-so-far and accumulated cost along the online steps."""

import numpy as np

from repro.experiments import fig8_cost_constraint


def test_fig8_steps(benchmark, report):
    result = benchmark.pedantic(
        fig8_cost_constraint.run, args=("quick",), rounds=1, iterations=1
    )
    for w, d in result.grid.pairs:
        best, cost = result.series("DeepCAT", w, d)
        assert np.all(np.diff(best) <= 1e-9)  # best-so-far is monotone
        assert np.all(np.diff(cost) > 0)  # cost strictly accumulates
    report("fig8_steps", fig8_cost_constraint.format_result(result))
