"""Figure 9: workload adaptability — transferred models tune PageRank."""

from repro.experiments import fig9_workload_adapt


def test_fig9_workload_adapt(benchmark, report):
    result = benchmark.pedantic(
        fig9_workload_adapt.run, args=("quick",), rounds=1, iterations=1
    )
    native = result.best["M_PR"]
    # Transferred DeepCAT models stay in the same ballpark as native
    # (paper: +11% to +19%); allow generous slack at quick scale.
    for source in ("WC", "TS", "KM"):
        assert result.best[f"M_{source}->PR"] < native * 2.0
    report(
        "fig9_workload_adapt", fig9_workload_adapt.format_result(result)
    )
