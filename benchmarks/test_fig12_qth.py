"""Figure 12: sweep of the Twin-Q Optimizer's Q-value threshold."""

from repro.experiments import fig12_qth


def test_fig12_qth(benchmark, report):
    result = benchmark.pedantic(
        fig12_qth.run, args=("quick",), rounds=1, iterations=1
    )
    assert len(result.thresholds) == 5
    # All thresholds must produce working sessions with best < default-ish
    assert all(b > 0 for b in result.best)
    report("fig12_qth", fig12_qth.format_result(result))
