"""White-box extension bench (the paper's future-work direction):
sensitivity-guided space reduction vs full-space DeepCAT at a matched
evaluation budget."""

from repro.experiments import whitebox_ablation


def test_extension_whitebox(benchmark, report):
    result = benchmark.pedantic(
        whitebox_ablation.run, args=("quick",), rounds=1, iterations=1
    )
    # Same budget, smarter spend: the reduced tuner must stay in the
    # full tuner's ballpark even after paying the probe out of its own
    # training budget (the probe is ~45% of the quick budget).
    assert result.reduced_best <= result.full_best * 1.25
    report("extension_whitebox", whitebox_ablation.format_result(result))
