"""Figure 5: online tuning with vs without the Twin-Q Optimizer."""

from repro.experiments import fig5_twinq_ablation


def test_fig5_twinq_ablation(benchmark, report):
    result = benchmark.pedantic(
        fig5_twinq_ablation.run, args=("quick",), rounds=1, iterations=1
    )
    # Paper: -19.29% total 5-step cost and a better best config.  The
    # cost delta is the weakest-reproducing effect on the simulator (see
    # EXPERIMENTS.md); require direction-or-parity, not magnitude.
    assert result.total_with <= result.total_without * 1.15
    assert result.best_with <= result.best_without * 1.10
    report("fig5_twinq", fig5_twinq_ablation.format_result(result))
