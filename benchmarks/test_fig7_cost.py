"""Figure 7: total online tuning cost with recommendation breakdown."""

from repro.experiments import fig7_tuning_cost
from repro.experiments.sessions import comparison_grid


def test_fig7_tuning_cost(benchmark, report):
    result = benchmark.pedantic(
        fig7_tuning_cost.run, args=("quick",), rounds=1, iterations=1
    )
    avg_c, _ = result.reduction_vs_cdbtune()
    avg_o, _ = result.reduction_vs_ottertune()
    # Paper: -24.64% avg vs CDBTune, -39.71% avg vs OtterTune.
    assert avg_c > 0.0
    assert avg_o > 0.0
    # OtterTune's GP retraining dwarfs DRL recommendation time.
    grid = comparison_grid("quick")
    w, d = grid.pairs[0]
    assert grid.mean_rec_cost("OtterTune", w, d) > 5 * grid.mean_rec_cost(
        "DeepCAT", w, d
    )
    report("fig7_cost", fig7_tuning_cost.format_result(result))
