"""Table 1: workload characteristics."""

from repro.experiments import tables


def test_table1(benchmark, report):
    text = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
    assert "TeraSort (TS)" in text
    report("table1", text)
