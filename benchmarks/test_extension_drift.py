"""Workload-drift stream bench (extension beyond the paper's one-shot
transfers): a single tuner serves TS -> PR -> KM requests in sequence."""

from repro.experiments import drift


def test_extension_drift(benchmark, report):
    result = benchmark.pedantic(
        drift.run, args=("quick",), rounds=1, iterations=1
    )
    # every phase must still beat its default from the phase-0 model
    for (tuner, phase), speedup in result.speedup.items():
        assert speedup > 1.0, f"{tuner} phase {phase}: {speedup:.2f}x"
    report("extension_drift", drift.format_result(result))
