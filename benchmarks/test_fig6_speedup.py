"""Figure 6: best-configuration speedup over default, all pairs x tuners."""

from repro.experiments import fig6_speedup


def test_fig6_speedup(benchmark, report):
    result = benchmark.pedantic(
        fig6_speedup.run, args=("quick",), rounds=1, iterations=1
    )
    avg = result.average_speedups()
    # Everyone beats the default handily...
    for tuner, speedup in avg.items():
        assert speedup > 1.3, f"{tuner} only reached {speedup:.2f}x"
    # ...and DeepCAT leads both baselines on average (paper: 1.45x/1.65x).
    assert result.relative_speedup("CDBTune") > 1.0
    assert result.relative_speedup("OtterTune") > 1.0
    report("fig6_speedup", fig6_speedup.format_result(result))
