"""Component-ablation bench: agent x replay matrix (beyond the paper's
figures; covers DESIGN.md's design-choice claims)."""

from repro.experiments import ablations


def test_ablation_components(benchmark, report):
    result = benchmark.pedantic(
        ablations.run, args=("quick",), rounds=1, iterations=1
    )
    assert len(result.best) == 6
    # DeepCAT's offline cell should not trail CDBTune's by a wide margin
    # (across seeds it leads; allow slack for the quick budget).
    assert result.cell("TD3", "RDPER") <= result.cell("DDPG", "PER") * 1.25
    report("ablation_components", ablations.format_result(result))
