"""Figure 2: CDF of 200 random configurations (TeraSort D1)."""

from repro.experiments import fig2_cdf


def test_fig2_cdf(benchmark, report):
    result = benchmark.pedantic(
        fig2_cdf.run, kwargs=dict(n_samples=200, seed=0),
        rounds=1, iterations=1,
    )
    # Paper shape: beating the default is easy, approaching the found
    # optimum is rare.
    assert result.prob_within(1.2) < 0.2
    assert result.prob_within(3.0) > 0.4
    report("fig2_cdf", fig2_cdf.format_result(result))
