"""Benchmark-suite helpers.

Each benchmark regenerates one paper artifact (table or figure) at the
``quick`` experiment scale, times it with pytest-benchmark, prints the
same rows/series the paper reports, and persists them under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a rendered artifact and persist it to results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
