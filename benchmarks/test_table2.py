"""Table 2: tuned parameter counts per pipeline component."""

from repro.experiments import tables


def test_table2(benchmark, report):
    text = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    assert "20*" in text  # 20 Spark (incl. connector), 7 YARN, 5 HDFS
    report("table2", text)
