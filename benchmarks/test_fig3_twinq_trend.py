"""Figure 3: min twin-Q tracks the real reward during offline training."""

from repro.experiments import fig3_twinq_trend


def test_fig3_twinq_trend(benchmark, report):
    result = benchmark.pedantic(
        fig3_twinq_trend.run, args=("quick",), rounds=1, iterations=1
    )
    # The conservative twin-Q estimate must share the reward's trend —
    # the property the Twin-Q Optimizer relies on.
    assert result.correlation > 0.2
    report("fig3_twinq_trend", fig3_twinq_trend.format_result(result))
