"""Figure 11: sweep of RDPER's high-reward batch ratio beta."""

from repro.experiments import fig11_beta


def test_fig11_beta(benchmark, report):
    result = benchmark.pedantic(
        fig11_beta.run, args=("quick",), rounds=1, iterations=1
    )
    assert len(result.betas) == 9
    # Paper: mid-range betas beat the extremes (all-good / all-bad
    # batches over-fit).  Compare the mid band's best against the edges.
    mid = min(
        b for beta, b in zip(result.betas, result.best) if 0.3 <= beta <= 0.7
    )
    edge = min(result.best[0], result.best[-1])
    assert mid <= edge * 1.10
    report("fig11_beta", fig11_beta.format_result(result))
