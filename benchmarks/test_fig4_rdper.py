"""Figure 4: RDPER vs conventional replay across offline budgets."""

from repro.experiments import fig4_rdper


def test_fig4_rdper(benchmark, report):
    result = benchmark.pedantic(
        fig4_rdper.run, args=("quick",), rounds=1, iterations=1
    )
    # Paper: TD3+RDPER converges faster (1.60x there) and ends at least
    # as good.  Shapes, not absolutes: require RDPER's final best to be
    # no worse than plain TD3's by more than 15%.
    assert result.best_with_rdper[-1] <= result.best_without_rdper[-1] * 1.15
    assert result.convergence_speedup() >= 1.0
    report("fig4_rdper", fig4_rdper.format_result(result))
