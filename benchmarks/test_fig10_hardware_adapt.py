"""Figure 10: hardware adaptability — Cluster-A models tune Cluster-B."""

from repro.experiments import fig10_hardware_adapt


def test_fig10_hardware_adapt(benchmark, report):
    result = benchmark.pedantic(
        fig10_hardware_adapt.run, args=("quick",), rounds=1, iterations=1
    )
    # Every tuner still beats Cluster-B's default from an A-trained model
    # (paper: WC 1.68/1.30/1.17x, PR 1.42/1.25/1.09x).
    for (w, t), s in result.speedup.items():
        assert s > 1.0, f"{t} on {w}: {s:.2f}x"
    report(
        "fig10_hardware_adapt", fig10_hardware_adapt.format_result(result)
    )
