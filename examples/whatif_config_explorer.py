"""What-if configuration explorer for the cluster simulator.

Uses the simulator directly (no tuner) to answer the questions an
engineer asks when hand-tuning Spark: what happens to TeraSort if I
change one knob at a time?  Prints per-stage breakdowns so the cost
channels (CPU / disk / network / spill / GC) are visible.

Run:  python examples/whatif_config_explorer.py
"""

import numpy as np

from repro.cluster.hardware import CLUSTER_A
from repro.config import build_pipeline_space
from repro.sim.engine import SparkSimulator
from repro.utils.tables import format_table
from repro.workloads.registry import get_workload

WHAT_IFS = [
    ("baseline (tuned)", {}),
    ("java serializer", {"spark.serializer": "java"}),
    ("no shuffle compression", {"spark.shuffle.compress": False}),
    ("zstd codec", {"spark.io.compression.codec": "zstd"}),
    ("replication=3", {"dfs.replication": 3}),
    ("tiny shuffle buffers", {"spark.shuffle.file.buffer": 16,
                              "io.file.buffer.size": 4}),
    ("parallelism=16", {"spark.default.parallelism": 16}),
    ("parallelism=400", {"spark.default.parallelism": 400}),
    ("2 executors only", {"spark.executor.instances": 2}),
    ("memory.fraction=0.9", {"spark.memory.fraction": 0.9}),
]


def tuned_base(space) -> dict:
    return space.defaults() | {
        "spark.executor.cores": 5,
        "spark.executor.memory": 3072,
        "spark.executor.memoryOverhead": 512,
        "spark.executor.instances": 9,
        "spark.default.parallelism": 96,
        "spark.serializer": "kryo",
        "spark.shuffle.file.buffer": 256,
        "spark.reducer.maxSizeInFlight": 96,
        "io.file.buffer.size": 512,
        "yarn.nodemanager.resource.memory-mb": 14336,
        "yarn.nodemanager.resource.cpu-vcores": 16,
        "yarn.scheduler.maximum-allocation-mb": 14336,
        "yarn.scheduler.maximum-allocation-vcores": 16,
        "dfs.replication": 1,
        "dfs.namenode.handler.count": 80,
        "dfs.datanode.handler.count": 40,
    }


def main() -> None:
    space = build_pipeline_space()
    sim = SparkSimulator(
        get_workload("TS"), "D1", CLUSTER_A,
        np.random.default_rng(0), noise_sigma=0.0,
    )
    base = tuned_base(space)

    rows = []
    for label, overrides in WHAT_IFS:
        result = sim.evaluate(dict(base, **overrides))
        if result.success:
            rows.append(
                (
                    label,
                    result.duration_s,
                    result.n_executors,
                    sum(s.cpu_seconds for s in result.stages),
                    sum(s.disk_seconds for s in result.stages),
                    sum(s.network_seconds for s in result.stages),
                )
            )
        else:
            rows.append((label, float("nan"), 0, 0.0, 0.0, 0.0))
    print(
        format_table(
            headers=("what-if", "duration (s)", "execs", "cpu (s)",
                     "disk (s)", "net (s)"),
            rows=rows,
            title="TeraSort D1: one-knob what-ifs against a tuned baseline",
        )
    )

    # Full stage breakdown for the baseline.
    result = sim.evaluate(base)
    rows = [
        (
            s.name, s.seconds, s.n_tasks, s.waves,
            f"{s.spill_fraction * 100:.0f}%", f"{s.gc_multiplier:.2f}",
        )
        for s in result.stages
    ]
    print()
    print(
        format_table(
            headers=("stage", "seconds", "tasks", "waves", "spill", "GC"),
            rows=rows,
            title=f"baseline stage breakdown (total {result.duration_s:.1f}s)",
        )
    )


if __name__ == "__main__":
    main()
