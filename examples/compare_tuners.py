"""Compare DeepCAT against CDBTune, OtterTune and random search.

Reproduces the paper's §5.2 comparison on one workload-input pair:
every tuner prepares offline (DRL training or sample collection), then
serves the same online tuning request for 5 steps.

Run:  python examples/compare_tuners.py [WC|TS|PR|KM] [D1|D2|D3]
"""

import sys

from repro import DeepCAT, make_env
from repro.baselines import CDBTune, OtterTune, RandomSearchTuner
from repro.utils.tables import format_table

OFFLINE_ITERATIONS = 900
OTTERTUNE_SAMPLES = 400


def main(workload: str = "TS", dataset: str = "D1") -> None:
    print(f"comparing tuners on {workload}-{dataset} (cluster-a)\n")

    print("preparing DeepCAT (TD3 + RDPER offline training)...")
    env = make_env(workload, dataset, seed=1)
    deepcat = DeepCAT.from_env(env, seed=1)
    deepcat.train_offline(env, OFFLINE_ITERATIONS)

    print("preparing CDBTune (DDPG + TD-error PER offline training)...")
    env = make_env(workload, dataset, seed=2)
    cdbtune = CDBTune.from_env(env, seed=1)
    cdbtune.train_offline(env, OFFLINE_ITERATIONS)

    print("preparing OtterTune (random sample corpus for the GP)...")
    env = make_env(workload, dataset, seed=3)
    ottertune = OtterTune.from_env(env, seed=1)
    ottertune.collect_offline(env, f"{workload}-{dataset}", OTTERTUNE_SAMPLES)

    tuners = [
        ("DeepCAT", deepcat),
        ("CDBTune", cdbtune),
        ("OtterTune", ottertune),
        ("RandomSearch", RandomSearchTuner(seed=1)),
    ]

    rows = []
    default_s = None
    for name, tuner in tuners:
        request = make_env(workload, dataset, seed=1234)
        session = tuner.tune_online(request, steps=5)
        default_s = session.default_duration_s
        rows.append(
            (
                name,
                session.best_duration_s,
                session.speedup_over_default,
                session.evaluation_seconds,
                f"{session.recommendation_seconds:.3f}",
            )
        )

    print(f"\ndefault configuration: {default_s:.1f}s\n")
    print(
        format_table(
            headers=(
                "tuner",
                "best exec (s)",
                "speedup (x)",
                "eval cost (s)",
                "rec time (s)",
            ),
            rows=rows,
            title="Online tuning comparison (5 steps each)",
        )
    )


if __name__ == "__main__":
    main(*sys.argv[1:3])
