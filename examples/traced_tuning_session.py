"""A fully observed DeepCAT session: metrics, spans, and provenance.

Runs the quickstart's offline+online protocol with telemetry recording
everything, then shows what each pillar captured: the Prometheus
metrics, the span tree (where the wall-clock went), and the run
manifest (seed, git SHA, hyper-parameters).  Writes the artifacts to
``telemetry-out/`` so you can load ``run.chrome.json`` in
``chrome://tracing`` / Perfetto afterwards.

Run:  python examples/traced_tuning_session.py
"""

from pathlib import Path

from repro import DeepCAT, make_env
from repro.telemetry import RunContext, load_trace, render_span_tree

OUT = Path("telemetry-out")


def main() -> None:
    OUT.mkdir(exist_ok=True)
    ctx = RunContext.recording(
        trace=OUT / "run.jsonl",
        metrics=OUT / "run.prom",
        manifest=OUT / "run.manifest.json",
        seed=7,
        kind="traced-example",
    )

    train_env = make_env("TS", "D1", seed=7)
    tuner = DeepCAT.from_env(train_env, seed=7)
    print("offline training (300 evaluations, instrumented)...")
    tuner.train_offline(train_env, iterations=300, telemetry=ctx)

    request_env = make_env("TS", "D1", seed=99)
    session = tuner.tune_online(request_env, steps=5, telemetry=ctx)
    print(
        f"best {session.best_duration_s:.1f}s "
        f"({session.speedup_over_default:.2f}x over default)\n"
    )

    written = ctx.save()

    # Pillar 1: metrics — the run's counters at a glance.
    reg = ctx.metrics
    print("headline metrics:")
    for name in (
        "offline.steps_total",
        "twinq.invocations_total",
        "twinq.iterations_total",
        "twinq.accepted_total",
    ):
        print(f"  {name:<28} {reg.counter(name).value:g}")
    print(
        f"  {'replay.rdper_high_size':<28} "
        f"{reg.gauge('replay.rdper_high_size').value:g}"
    )
    beta = reg.histogram("replay.rdper_realized_beta")
    print(
        f"  realized RDPER beta: median {beta.quantile(0.5):.2f} "
        f"over {beta.count} batches (target 0.6)"
    )

    # Pillar 2: traces — where the online wall-clock went.
    totals = ctx.tracer.totals()
    rec = totals.get("online.recommend", {"total_s": 0.0})["total_s"]
    tune = totals.get("online.tune", {"total_s": 1.0})["total_s"]
    print(
        f"\nrecommendation share of online wall-clock: "
        f"{rec / tune * 100:.1f}% (the paper's negligible-overhead claim)"
    )
    print("\nonline span tree (spans >= 1 ms):")
    roots = load_trace(OUT / "run.jsonl")
    online = [r for r in roots if r["name"] == "online.tune"]
    print(render_span_tree(online, min_duration_s=1e-3))

    # Pillar 3: provenance.
    m = ctx.manifest
    print(
        f"\nmanifest: run {m.run_id}, seed {m.seed}, "
        f"git {m.git_sha[:10] if m.git_sha else 'n/a'}, "
        f"{len(m.hyper_parameters)} hyper-parameters recorded"
    )

    print("\nartifacts written:")
    for path in written:
        print(f"  {path}")
    print(
        "inspect them with: python -m repro.cli telemetry summary "
        f"{written[0]}"
    )


if __name__ == "__main__":
    main()
