"""Continuous tuning under workload drift, with structured logging.

Uses the time-varying environment (`repro.envs.dynamic`) to model a
cluster whose workload shifts TeraSort -> PageRank -> KMeans, and a
single DeepCAT instance running one *continuous* online session across
the shift (the tuner never learns the phase boundaries — it just keeps
tuning).  Every step is logged as JSON lines — the artifact an operator
would ship to their observability stack.

Run:  python examples/drift_monitoring.py
"""

import json
import tempfile
from pathlib import Path

from repro import DeepCAT, make_env
from repro.cluster.hardware import CLUSTER_A
from repro.config import build_pipeline_space
from repro.core.online import OnlineTuner
from repro.envs.dynamic import DynamicTuningEnv, Phase
from repro.utils.logging import JsonlLogger

PHASES = [Phase("TS", "D1", 5), Phase("PR", "D1", 5), Phase("KM", "D1", 5)]


def main() -> None:
    space = build_pipeline_space()

    # Offline: train on the first phase's workload only.
    train_env = make_env("TS", "D1", seed=4)
    tuner = DeepCAT.from_env(train_env, seed=4)
    print("offline training on TeraSort (the phase-0 workload)...")
    tuner.train_offline(train_env, iterations=900)

    # Online: one continuous 15-step session across the drift.
    dyn = DynamicTuningEnv(PHASES, CLUSTER_A, space, seed=21)
    log_path = Path(tempfile.gettempdir()) / "deepcat_drift_events.jsonl"
    log_path.write_text("")  # fresh file
    logger = JsonlLogger(log_path)
    online = OnlineTuner(
        tuner.agent,
        tuner.buffer,
        name="DeepCAT",
        use_twin_q=True,
        q_threshold=tuner.q_threshold,
        logger=logger,
    )
    total_steps = sum(p.steps for p in PHASES)
    print(f"serving one continuous {total_steps}-step session (TS->PR->KM):")
    session = online.tune(dyn, steps=total_steps)
    logger.close()

    # Slice the session at the phase switches the environment recorded.
    boundaries = [s for s, _ in dyn.switch_log] + [total_steps]
    for (start, phase_idx), end in zip(dyn.switch_log, boundaries[1:]):
        phase = PHASES[phase_idx]
        chunk = session.steps[start:end]
        ok = [s.duration_s for s in chunk if s.success]
        best = min(ok) if ok else float("nan")
        print(
            f"  {phase.workload}-{phase.dataset}: best {best:7.1f}s over "
            f"steps {start + 1}-{end}, "
            f"{sum(1 for s in chunk if not s.success)} failures"
        )

    events = [json.loads(l) for l in log_path.read_text().splitlines()]
    print(
        f"\nlogged {len(events)} step events to {log_path}; "
        f"total tuning cost {session.total_tuning_seconds:.1f}s"
    )


if __name__ == "__main__":
    main()
