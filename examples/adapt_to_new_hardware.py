"""Hardware adaptability (the paper's §5.3.2 / Figure 10).

Train DeepCAT on the physical Cluster-A, then serve online tuning
requests on the smaller VM Cluster-B without retraining.  Recommended
parameters outside the smaller cluster's scope are clipped at the
boundary by YARN's allocation arithmetic, exactly as the paper does.

Run:  python examples/adapt_to_new_hardware.py
"""

from repro import DeepCAT, make_env
from repro.cluster.hardware import CLUSTER_A, CLUSTER_B


def main() -> None:
    print(
        f"cluster-a: {CLUSTER_A.n_nodes} nodes x {CLUSTER_A.node.cores} cores "
        f"/ {CLUSTER_A.node.memory_mb} MB"
    )
    print(
        f"cluster-b: {CLUSTER_B.n_nodes} nodes x {CLUSTER_B.node.cores} cores "
        f"/ {CLUSTER_B.node.memory_mb} MB (VM cluster)\n"
    )

    for workload in ("WC", "PR"):
        train_env = make_env(workload, "D1", cluster=CLUSTER_A, seed=5)
        tuner = DeepCAT.from_env(train_env, seed=5)
        tuner.train_offline(train_env, iterations=800)

        request_a = make_env(workload, "D1", cluster=CLUSTER_A, seed=50)
        session_a = tuner.tune_online(request_a, steps=5)

        request_b = make_env(workload, "D1", cluster=CLUSTER_B, seed=50)
        session_b = tuner.tune_online(request_b, steps=5)

        print(f"{workload}-D1, model trained on cluster-a:")
        print(
            f"  on cluster-a: default {session_a.default_duration_s:6.1f}s -> "
            f"best {session_a.best_duration_s:6.1f}s "
            f"({session_a.speedup_over_default:.2f}x)"
        )
        print(
            f"  on cluster-b: default {session_b.default_duration_s:6.1f}s -> "
            f"best {session_b.best_duration_s:6.1f}s "
            f"({session_b.speedup_over_default:.2f}x, no retraining)"
        )
        best_b = session_b.best_config
        print(
            f"  cluster-b best fits its budget: "
            f"{best_b['spark.executor.instances']} executors x "
            f"{best_b['spark.executor.memory']} MB on "
            f"{CLUSTER_B.node.memory_mb} MB nodes\n"
        )


if __name__ == "__main__":
    main()
