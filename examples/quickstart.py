"""Quickstart: tune TeraSort on the simulated 3-node Spark cluster.

Trains a small DeepCAT model offline, then serves an online tuning
request with 5 steps (the paper's protocol) and prints what the paper's
Figures 6-8 would record for this session.

Run:  python examples/quickstart.py
"""

from repro import DeepCAT, make_env


def main() -> None:
    # The standard environment used for offline training.
    train_env = make_env("TS", "D1", seed=7)
    print(
        f"TeraSort D1 on cluster-a: default configuration runs in "
        f"{train_env.default_duration:.1f}s"
    )

    tuner = DeepCAT.from_env(train_env, seed=7)
    print("offline training (700 evaluations on the standard environment)...")
    log = tuner.train_offline(train_env, iterations=700)
    print(f"  best configuration seen offline: {log.best_duration_s:.1f}s")
    print(
        f"  RDPER pools: {tuner.buffer.high_size} high-reward / "
        f"{tuner.buffer.low_size} low-reward transitions"
    )

    # A new online tuning request (fresh environment state and noise).
    request_env = make_env("TS", "D1", seed=99)
    session = tuner.tune_online(request_env, steps=5)

    print("\nonline tuning session (5 steps):")
    for step in session.steps:
        screened = (
            f" [twin-Q optimized, {step.twinq_iterations} candidates]"
            if step.twinq_iterations
            else ""
        )
        status = "ok" if step.success else "FAILED"
        print(
            f"  step {step.step + 1}: {step.duration_s:7.1f}s "
            f"(reward {step.reward:+.2f}, {status}){screened}"
        )

    print(
        f"\nbest configuration found: {session.best_duration_s:.1f}s "
        f"({session.speedup_over_default:.2f}x speedup over default)"
    )
    print(
        f"total online tuning cost: {session.total_tuning_seconds:.1f}s "
        f"(recommendation time {session.recommendation_seconds * 1e3:.1f}ms)"
    )
    print("\nbest configuration (non-default values):")
    defaults = request_env.space.defaults()
    for key, value in sorted(session.best_config.items()):
        if value != defaults[key]:
            print(f"  {key} = {value}  (default {defaults[key]})")


if __name__ == "__main__":
    main()
