"""KMeans: tuning across the memory cliff.

The paper singles out KMeans (§5.2.1): intermediate results must be
cached in executor memory, under-provisioning causes OOM errors, and
high-reward transitions become extra sparse.  This example shows the
cliff directly on the simulator — cache deficit, spills, GC and OOM as
executor memory shrinks — and then lets DeepCAT tune across it.

Run:  python examples/tune_kmeans_memory_cliff.py
"""

from repro import DeepCAT, make_env
from repro.utils.tables import format_table


def sweep_memory_cliff() -> None:
    env = make_env("KM", "D1", seed=0, noise_sigma=0.0)
    base = env.space.defaults() | {
        "spark.executor.cores": 4,
        "spark.executor.instances": 6,
        "spark.executor.memoryOverhead": 512,
        "spark.memory.storageFraction": 0.6,
        "yarn.nodemanager.resource.memory-mb": 14336,
        "yarn.scheduler.maximum-allocation-mb": 14336,
        "yarn.nodemanager.resource.cpu-vcores": 16,
        "yarn.scheduler.maximum-allocation-vcores": 16,
    }
    rows = []
    for heap in (6144, 4096, 3072, 2048, 1536, 1024):
        config = dict(base, **{"spark.executor.memory": heap})
        result = env.runner.simulator.evaluate(config)
        if result.success:
            iter_stage = result.stage("assign-iter-0")
            rows.append(
                (
                    heap,
                    f"{result.duration_s:.0f}",
                    f"{iter_stage.cache_deficit * 100:.0f}%",
                    f"{iter_stage.spill_fraction * 100:.0f}%",
                    f"{iter_stage.gc_multiplier:.2f}",
                    "ok",
                )
            )
        else:
            rows.append((heap, "-", "-", "-", "-", result.failure_reason))
    print(
        format_table(
            headers=(
                "executor heap (MB)",
                "duration (s)",
                "cache deficit",
                "spill",
                "GC factor",
                "outcome",
            ),
            rows=rows,
            title="KMeans D1: the executor-memory cliff (6 executors x 4 cores)",
        )
    )


def tune_with_deepcat() -> None:
    env = make_env("KM", "D1", seed=11)
    print(
        f"\ndefault configuration: {env.default_duration:.0f}s "
        "(cache thrashing: the 9.3 GB deserialized dataset does not fit)"
    )
    tuner = DeepCAT.from_env(env, seed=11)
    tuner.train_offline(env, iterations=900)
    session = tuner.tune_online(make_env("KM", "D1", seed=77), steps=5)
    print(
        f"DeepCAT best after 5 online steps: {session.best_duration_s:.0f}s "
        f"({session.speedup_over_default:.1f}x over default)"
    )
    best = session.best_config
    print(
        "memory-relevant knobs of the best configuration: "
        f"executor.memory={best['spark.executor.memory']}MB, "
        f"instances={best['spark.executor.instances']}, "
        f"storageFraction={best['spark.memory.storageFraction']:.2f}, "
        f"serializer={best['spark.serializer']}"
    )


if __name__ == "__main__":
    sweep_memory_cliff()
    tune_with_deepcat()
